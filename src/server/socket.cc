#include "server/socket.h"

#if defined(__unix__) || defined(__APPLE__)
#define SMPX_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#endif

#include <algorithm>
#include <cstdlib>

#include "index/wire.h"

namespace smpx::server {

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

#if SMPX_HAVE_SOCKETS

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

// A dying client must surface as a write error on this connection's
// thread, not a process-wide SIGPIPE. MSG_NOSIGNAL covers send(); the
// one-time ignore covers any other path.
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

Result<Fd> ListenUnix(const std::string& path) {
  IgnoreSigpipeOnce();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno(("bind " + path).c_str());
  }
  if (::listen(fd.get(), 64) != 0) return Errno("listen");
  return fd;
}

Result<Fd> ListenTcp(int port, int* bound_port) {
  IgnoreSigpipeOnce();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 64) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

Result<Fd> Accept(const Fd& listener) {
  for (;;) {
    int c = ::accept(listener.get(), nullptr, nullptr);
    if (c >= 0) return Fd(c);
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == EBADF) {
      return Status::Cancelled("listener shut down");
    }
    return Errno("accept");
  }
}

void ShutdownListener(const Fd& listener) {
  if (listener.valid()) ::shutdown(listener.get(), SHUT_RDWR);
}

Result<Fd> Connect(const std::string& endpoint) {
  IgnoreSigpipeOnce();
  if (endpoint.rfind("tcp:", 0) == 0) {
    std::string rest = endpoint.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("tcp endpoint needs host:port: " +
                                     endpoint);
    }
    std::string host = rest.substr(0, colon);
    int port = std::atoi(rest.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument("bad tcp port in " + endpoint);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (host == "localhost" || host.empty()) host = "127.0.0.1";
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad tcp host in " + endpoint);
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return Errno("socket");
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return Errno(("connect " + endpoint).c_str());
    }
    return fd;
  }
  std::string path =
      endpoint.rfind("unix:", 0) == 0 ? endpoint.substr(5) : endpoint;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno(("connect " + path).c_str());
  }
  return fd;
}

Status WriteAll(const Fd& fd, std::string_view data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
#if defined(MSG_NOSIGNAL)
    ssize_t n = ::send(fd.get(), p, left, MSG_NOSIGNAL);
#else
    ssize_t n = ::write(fd.get(), p, left);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadExact(const Fd& fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::read(fd.get(), buf + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("peer closed");
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

#else  // !SMPX_HAVE_SOCKETS

void Fd::Close() { fd_ = -1; }

namespace {
Status NoSockets() {
  return Status::Unsupported("smpx server sockets require a POSIX platform");
}
}  // namespace

Result<Fd> ListenUnix(const std::string&) { return NoSockets(); }
Result<Fd> ListenTcp(int, int*) { return NoSockets(); }
Result<Fd> Accept(const Fd&) { return NoSockets(); }
Result<Fd> Connect(const std::string&) { return NoSockets(); }
void ShutdownListener(const Fd&) {}
Status WriteAll(const Fd&, std::string_view) { return NoSockets(); }
Status ReadExact(const Fd&, char*, size_t) { return NoSockets(); }

#endif  // SMPX_HAVE_SOCKETS

Status ReadFrame(const Fd& fd, char* kind, std::string* payload) {
  char hdr[4];
  Status s = ReadExact(fd, hdr, sizeof(hdr));
  if (!s.ok()) return s;
  uint32_t len = static_cast<uint8_t>(hdr[0]) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(hdr[1])) << 8) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(hdr[2])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(hdr[3])) << 24);
  if (len == 0) return Status::ParseError("empty frame");
  if (len > kMaxFrameBytes) {
    return Status::ParseError("frame of " + std::to_string(len) +
                              " bytes exceeds limit");
  }
  s = ReadExact(fd, kind, 1);
  if (!s.ok()) {
    return s.code() == StatusCode::kNotFound
               ? Status::IoError("connection closed mid-frame")
               : s;
  }
  payload->resize(len - 1);
  if (len == 1) return Status::Ok();
  s = ReadExact(fd, payload->data(), payload->size());
  if (!s.ok() && s.code() == StatusCode::kNotFound) {
    return Status::IoError("connection closed mid-frame");
  }
  return s;
}

Status WriteFrame(const Fd& fd, char kind, std::string_view payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload too large");
  }
  return WriteAll(fd, EncodeFrame(kind, payload));
}

Status FrameSink::Append(std::string_view data) {
  if (!error_.ok()) return error_;
  bytes_written_ += data.size();
  while (!data.empty()) {
    size_t take = std::min(cap_ - buf_.size(), data.size());
    buf_.append(data.substr(0, take));
    data.remove_prefix(take);
    if (buf_.size() == cap_) {
      error_ = WriteFrame(*fd_, kFrameData, buf_);
      buf_.clear();
      if (!error_.ok()) return error_;
    }
  }
  return Status::Ok();
}

Status FrameSink::Flush() {
  if (!error_.ok()) return error_;
  if (!buf_.empty()) {
    error_ = WriteFrame(*fd_, kFrameData, buf_);
    buf_.clear();
  }
  return error_;
}

}  // namespace smpx::server
