#include "server/protocol.h"

#include "index/wire.h"

namespace smpx::server {
namespace {

namespace wire = smpx::index::wire;

void PutString(std::string* out, std::string_view s) {
  wire::PutVarint(out, s.size());
  out->append(s);
}

bool ReadString(wire::Reader* r, std::string_view payload, std::string* out) {
  uint64_t len = 0;
  if (!r->ReadVarint(&len) || len > payload.size() - r->pos()) return false;
  out->assign(payload.substr(r->pos(), static_cast<size_t>(len)));
  return r->Skip(static_cast<size_t>(len));
}

Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed ") + what + " frame");
}

}  // namespace

std::string Request::Encode() const {
  std::string p;
  p.push_back(static_cast<char>(op));
  PutString(&p, dtd_text);
  PutString(&p, paths_text);
  PutString(&p, doc_path);
  wire::PutVarint(&p, window);
  wire::PutVarint(&p, target);
  p.push_back(by_record ? 1 : 0);
  wire::PutVarint(&p, count);
  PutString(&p, token);
  return p;
}

Result<Request> Request::Decode(std::string_view payload) {
  Request q;
  wire::Reader r(payload);
  uint8_t op = 0, by_record = 0;
  if (!r.ReadByte(&op)) return Malformed("request");
  if (op < 1 || op > 3) {
    return Status::ParseError("unknown request op " + std::to_string(op));
  }
  q.op = static_cast<Op>(op);
  if (!ReadString(&r, payload, &q.dtd_text) ||
      !ReadString(&r, payload, &q.paths_text) ||
      !ReadString(&r, payload, &q.doc_path) || !r.ReadVarint(&q.window) ||
      !r.ReadVarint(&q.target) || !r.ReadByte(&by_record) ||
      !r.ReadVarint(&q.count) || !ReadString(&r, payload, &q.token) ||
      r.remaining() != 0) {
    return Malformed("request");
  }
  q.by_record = by_record != 0;
  return q;
}

std::string Trailer::Encode() const {
  std::string p;
  wire::PutVarint(&p, emitted_bytes);
  wire::PutVarint(&p, records);
  wire::PutVarint(&p, position);
  wire::PutVarint(&p, out_position);
  wire::PutVarint(&p, record_position);
  p.push_back(at_end ? 1 : 0);
  PutString(&p, token);
  return p;
}

Result<Trailer> Trailer::Decode(std::string_view payload) {
  Trailer t;
  wire::Reader r(payload);
  uint8_t at_end = 0;
  if (!r.ReadVarint(&t.emitted_bytes) || !r.ReadVarint(&t.records) ||
      !r.ReadVarint(&t.position) || !r.ReadVarint(&t.out_position) ||
      !r.ReadVarint(&t.record_position) || !r.ReadByte(&at_end) ||
      !ReadString(&r, payload, &t.token) || r.remaining() != 0) {
    return Malformed("trailer");
  }
  t.at_end = at_end != 0;
  return t;
}

std::string ErrorFrame::Encode() const {
  std::string p;
  p.push_back(static_cast<char>(code));
  p.push_back(retryable ? 1 : 0);
  PutString(&p, message);
  return p;
}

Result<ErrorFrame> ErrorFrame::Decode(std::string_view payload) {
  ErrorFrame e;
  wire::Reader r(payload);
  uint8_t code = 0, retryable = 0;
  if (!r.ReadByte(&code) || !r.ReadByte(&retryable) ||
      !ReadString(&r, payload, &e.message) || r.remaining() != 0) {
    return Malformed("error");
  }
  e.code = static_cast<StatusCode>(code);
  e.retryable = retryable != 0;
  return e;
}

Status ErrorFrame::ToStatus() const {
  switch (code) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kParseError:
      return Status::ParseError(message);
    case StatusCode::kUnsupported:
      return Status::Unsupported(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kIoError:
      return Status::IoError(message);
    case StatusCode::kCancelled:
      return Status::Cancelled(message);
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(message);
}

std::string HexEncode(std::string_view bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

Result<std::string> HexDecode(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad hex digit in token");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string EncodeFrame(char kind, std::string_view payload) {
  std::string f;
  wire::PutU32(&f, static_cast<uint32_t>(payload.size() + 1));
  f.push_back(kind);
  f.append(payload);
  return f;
}

}  // namespace smpx::server
