#include "server/cache.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include "common/hash.h"
#include "dtd/dtd.h"
#include "paths/projection_path.h"

namespace smpx::server {
namespace {

// Size + mtime snapshot for the staleness recheck. Unavailable platforms
// report zeros, degrading to cache-forever (the mmap itself still pins a
// consistent byte view on POSIX).
void StatFile(const std::string& path, uint64_t* size, int64_t* mtime_ns) {
  *size = 0;
  *mtime_ns = 0;
#if defined(__unix__) || defined(__APPLE__)
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    *size = static_cast<uint64_t>(st.st_size);
#if defined(__APPLE__)
    *mtime_ns = static_cast<int64_t>(st.st_mtimespec.tv_sec) * 1000000000 +
                st.st_mtimespec.tv_nsec;
#else
    *mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                st.st_mtim.tv_nsec;
#endif
  }
#else
  (void)path;
#endif
}

}  // namespace

Cache::Cache(const CacheOptions& opts)
    : opts_(opts), pool_(opts.build_threads) {}

Result<std::shared_ptr<const core::Prefilter>> Cache::GetTables(
    const std::string& dtd_text, const std::string& paths_text) {
  TablesKey key{Hash64(dtd_text), Hash64(paths_text)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = tables_.Get(key)) return hit;
  }
  auto dtd = dtd::Dtd::Parse(dtd_text);
  if (!dtd.ok()) return dtd.status();
  auto paths = paths::ProjectionPath::ParseList(paths_text);
  if (!paths.ok()) return paths.status();
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*paths));
  if (!pf.ok()) return pf.status();
  auto value = std::make_shared<const core::Prefilter>(std::move(*pf));
  std::lock_guard<std::mutex> lock(mu_);
  tables_.Put(key, value, opts_.max_tables);
  return value;
}

Result<std::shared_ptr<const IndexedDoc>> Cache::GetIndexedDoc(
    const core::Prefilter& pf, const std::string& doc_path) {
  IndexKey key{pf.tables().Fingerprint(), doc_path};
  uint64_t size = 0;
  int64_t mtime_ns = 0;
  StatFile(doc_path, &size, &mtime_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = indexes_.Get(key)) {
      if (hit->file_size == size && hit->file_mtime_ns == mtime_ns) {
        return hit;
      }
      indexes_.Erase(key);  // changed underneath us: rebuild below
    }
  }

  std::lock_guard<std::mutex> build_lock(build_mu_);
  {
    // A peer may have rebuilt while we waited for the build lock.
    std::lock_guard<std::mutex> lock(mu_);
    if (auto hit = indexes_.Get(key)) {
      if (hit->file_size == size && hit->file_mtime_ns == mtime_ns) {
        return hit;
      }
      indexes_.Erase(key);
    }
  }
  auto entry = std::make_shared<IndexedDoc>();
  entry->file_size = size;
  entry->file_mtime_ns = mtime_ns;
  auto src = MmapSource::Open(doc_path);
  if (!src.ok()) return src.status();
  entry->source = std::move(*src);
  index::BoundaryIndexOptions bopts;
  bopts.granularity_bytes = opts_.index_granularity;
  auto idx =
      index::BoundaryIndex::Build(pf.tables(), entry->doc(), &pool_, bopts);
  if (!idx.ok()) return idx.status();
  entry->index = std::move(*idx);
  // Fail-closed sanity on the freshly built pair; catches a document
  // rewritten between the stat and the map.
  Status match = entry->index.Matches(entry->doc(), pf.tables());
  if (!match.ok()) return match;

  std::shared_ptr<const IndexedDoc> value = std::move(entry);
  std::lock_guard<std::mutex> lock(mu_);
  indexes_.Put(key, value, opts_.max_indexes);
  return value;
}

size_t Cache::tables_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.map.size();
}

size_t Cache::indexes_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.map.size();
}

}  // namespace smpx::server
