// Minimal blocking-socket transport for smpxd: unix-domain and loopback
// TCP listeners, client connects, full-frame reads/writes, and the
// OutputSink that streams projection bytes to a peer as bounded data
// frames. Blocking writes are the flow control: a slow client stalls its
// own connection's engine session (one thread, one window) instead of
// growing a buffer -- the daemon's memory stays flat no matter how slowly
// a projection is consumed.
//
// POSIX-only (like mmap support in common/io.cc); on other platforms
// every entry point returns Status::Unsupported.

#ifndef SMPX_SERVER_SOCKET_H_
#define SMPX_SERVER_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/io.h"
#include "common/result.h"
#include "common/status.h"
#include "server/protocol.h"

namespace smpx::server {

/// Owning file descriptor with move semantics; -1 when empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix-domain socket at `path` (an existing
/// socket file is replaced -- the daemon owns its rendezvous path).
Result<Fd> ListenUnix(const std::string& path);

/// Binds and listens on loopback TCP `port` (0 = ephemeral); on success
/// `*bound_port` receives the actual port.
Result<Fd> ListenTcp(int port, int* bound_port);

/// Accepts one connection; blocks. Fails with kCancelled when the
/// listener fd was shut down from another thread.
Result<Fd> Accept(const Fd& listener);

/// Connects to "unix:PATH", "tcp:HOST:PORT", or a bare filesystem path
/// (treated as unix).
Result<Fd> Connect(const std::string& endpoint);

/// Unblocks a pending Accept from another thread (shutdown + close
/// race-free enough for our single-owner lifecycle).
void ShutdownListener(const Fd& listener);

/// Writes all of `data`; EINTR-safe. EPIPE comes back as kIoError.
Status WriteAll(const Fd& fd, std::string_view data);

/// Reads exactly `len` bytes. A clean EOF at offset 0 yields kNotFound
/// ("peer closed"); a mid-record EOF is kIoError.
Status ReadExact(const Fd& fd, char* buf, size_t len);

/// Reads one whole frame; enforces kMaxFrameBytes BEFORE allocating.
/// `*kind` receives the tag byte, `*payload` the rest of the frame.
Status ReadFrame(const Fd& fd, char* kind, std::string* payload);

/// Writes one `kind` frame with `payload`.
Status WriteFrame(const Fd& fd, char kind, std::string_view payload);

/// OutputSink that coalesces appends into data frames of at most
/// `frame_bytes` and writes them to the socket. First write error is
/// sticky (mirrors FileSink semantics) so an engine run aborts promptly
/// when the client goes away.
class FrameSink : public OutputSink {
 public:
  explicit FrameSink(const Fd* fd, size_t frame_bytes = kDataFrameBytes)
      : fd_(fd), cap_(frame_bytes > 0 ? frame_bytes : 1) {
    buf_.reserve(cap_);
  }

  Status Append(std::string_view data) override;
  /// Flushes the partial frame (if any); does NOT write a trailer.
  Status Flush();

 private:
  const Fd* fd_;
  size_t cap_;
  std::string buf_;
  Status error_;  // sticky
};

}  // namespace smpx::server

#endif  // SMPX_SERVER_SOCKET_H_
