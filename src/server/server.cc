#include "server/server.h"

#if defined(__unix__) || defined(__APPLE__)
#define SMPX_SERVER_POSIX 1
#include <sys/socket.h>
#endif

#include <utility>

#include "core/engine.h"
#include "index/cursor.h"

namespace smpx::server {

bool Admission::TryAcquire(uint64_t bytes) {
  uint64_t cur = available_.load(std::memory_order_relaxed);
  while (cur >= bytes) {
    if (available_.compare_exchange_weak(cur, cur - bytes,
                                         std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void Admission::Release(uint64_t bytes) {
  available_.fetch_add(bytes, std::memory_order_acq_rel);
}

Server::Server(const ServerOptions& opts)
    : opts_(opts), cache_(opts.cache), admission_(opts.max_buffer_bytes) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
    return Status::InvalidArgument("no listener configured");
  }
  if (!opts_.unix_path.empty()) {
    auto fd = ListenUnix(opts_.unix_path);
    if (!fd.ok()) return fd.status();
    unix_listener_ = std::move(*fd);
  }
  if (opts_.tcp_port >= 0) {
    auto fd = ListenTcp(opts_.tcp_port, &tcp_port_);
    if (!fd.ok()) return fd.status();
    tcp_listener_ = std::move(*fd);
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(&unix_listener_); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(&tcp_listener_); });
  }
  return Status::Ok();
}

void Server::Stop() {
  stopping_.store(true);
  ShutdownListener(unix_listener_);
  ShutdownListener(tcp_listener_);
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  unix_listener_.Close();
  tcp_listener_.Close();
  std::unique_lock<std::mutex> lock(conn_mu_);
#if SMPX_SERVER_POSIX
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
#endif
  conn_cv_.wait(lock, [this] { return live_conns_ == 0; });
}

void Server::AcceptLoop(Fd* listener) {
  for (;;) {
    auto conn = Accept(*listener);
    if (!conn.ok()) return;  // shutdown or fatal listener error
    if (stopping_.load(std::memory_order_relaxed)) return;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++live_conns_;
      conn_fds_.insert(conn->get());
    }
    std::thread([this, c = std::move(*conn)]() mutable {
      ServeConnection(std::move(c));
    }).detach();
  }
}

void Server::ServeConnection(Fd conn) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!ServeOne(conn)) break;
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(conn.get());
  conn.Close();
  --live_conns_;
  conn_cv_.notify_all();
}

bool Server::ServeOne(const Fd& conn) {
  char kind = 0;
  std::string payload;
  Status s = ReadFrame(conn, &kind, &payload);
  if (!s.ok()) {
    if (s.code() == StatusCode::kParseError) {
      // Oversized or malformed framing: tell the peer why, then close --
      // the stream is unsynchronized and nothing after it can be trusted.
      ErrorFrame e{s.code(), std::string(s.message()), false};
      (void)WriteFrame(conn, kFrameError, e.Encode());
    }
    return false;  // peer closed, read error, or framing violation
  }
  if (kind != kFrameRequest) {
    ErrorFrame e{StatusCode::kParseError,
                 "expected a request frame, got '" + std::string(1, kind) + "'",
                 false};
    (void)WriteFrame(conn, kFrameError, e.Encode());
    return false;
  }
  auto req = Request::Decode(payload);
  if (!req.ok()) {
    ErrorFrame e{req.status().code(), std::string(req.status().message()),
                 false};
    (void)WriteFrame(conn, kFrameError, e.Encode());
    return false;
  }

  if (!admission_.TryAcquire(opts_.per_request_bytes)) {
    // The retryable contract: nothing is wrong with the request, the
    // global buffer budget is momentarily full. Connection stays open.
    ErrorFrame e{StatusCode::kResourceExhausted,
                 "server memory budget exhausted; retry", true};
    return WriteFrame(conn, kFrameError, e.Encode()).ok();
  }
  Status d = Dispatch(conn, *req);
  admission_.Release(opts_.per_request_bytes);
  if (!d.ok()) {
    ErrorFrame e{d.code(), std::string(d.message()), false};
    return WriteFrame(conn, kFrameError, e.Encode()).ok();
  }
  return true;
}

Status Server::Dispatch(const Fd& conn, const Request& req) {
  auto pf = cache_.GetTables(req.dtd_text, req.paths_text);
  if (!pf.ok()) return pf.status();
  auto doc = cache_.GetIndexedDoc(**pf, req.doc_path);
  if (!doc.ok()) return doc.status();

  core::EngineOptions eopts;
  eopts.window_capacity = static_cast<size_t>(
      req.window > 0 ? req.window : opts_.default_window);

  FrameSink sink(&conn);
  Trailer t;

  if (req.op == Op::kProject) {
    core::RunStats stats;
    core::PrefilterSession session((*pf)->tables(), &sink, &stats, eopts);
    Status s = session.Resume((*doc)->doc());
    if (s.ok()) s = session.Finish();
    if (s.ok()) s = sink.Flush();
    if (!s.ok()) return s;
    t.emitted_bytes = sink.bytes_written();
    t.position = (*doc)->doc().size();
    t.out_position = 0;
    t.at_end = true;
    return WriteFrame(conn, kFrameTrailer, t.Encode());
  }

  // kSeek / kResume: cursor ops over the cached index. The cache verified
  // index <-> (document, tables) compatibility when it built the entry,
  // so skip the per-request full-document digest; tokens still carry
  // their own fail-closed digests inside Restore.
  index::CursorOptions copts;
  copts.engine = eopts;
  copts.verify_document = false;
  auto cur =
      req.op == Op::kSeek
          ? (req.by_record
                 ? index::Cursor::OpenAtRecord((*doc)->index, (*pf)->tables(),
                                               (*doc)->doc(), req.target,
                                               copts)
                 : index::Cursor::OpenAt((*doc)->index, (*pf)->tables(),
                                         (*doc)->doc(), req.target, copts))
          : index::Cursor::Restore((*doc)->index, (*pf)->tables(),
                                   (*doc)->doc(), req.token, copts);
  if (!cur.ok()) return cur.status();

  if (req.count > 0) {
    auto n = cur->Next(static_cast<size_t>(req.count), &sink);
    if (!n.ok()) return n.status();
    t.records = *n;
  } else {
    Status s = cur->Drain(&sink);
    if (!s.ok()) return s;
  }
  Status s = sink.Flush();
  if (!s.ok()) return s;
  t.emitted_bytes = sink.bytes_written();
  t.position = cur->position();
  t.out_position = cur->output_position();
  t.record_position = cur->record_position();
  t.at_end = cur->at_end();
  if (!cur->at_end()) t.token = cur->SaveToken();
  return WriteFrame(conn, kFrameTrailer, t.Encode());
}

}  // namespace smpx::server
