#include "server/client.h"

namespace smpx::server {

Result<Client> Client::Connect(const std::string& endpoint) {
  auto fd = smpx::server::Connect(endpoint);
  if (!fd.ok()) return fd.status();
  return Client(std::move(*fd));
}

Result<Trailer> Client::Call(const Request& req, OutputSink* out) {
  last_retryable_ = false;
  Status s = WriteFrame(fd_, kFrameRequest, req.Encode());
  if (!s.ok()) return s;
  for (;;) {
    char kind = 0;
    std::string payload;
    s = ReadFrame(fd_, &kind, &payload);
    if (!s.ok()) {
      return s.code() == StatusCode::kNotFound
                 ? Status::IoError("server closed the connection mid-response")
                 : s;
    }
    switch (kind) {
      case kFrameData:
        if (out != nullptr) {
          Status a = out->Append(payload);
          if (!a.ok()) return a;
        }
        break;
      case kFrameTrailer:
        return Trailer::Decode(payload);
      case kFrameError: {
        auto e = ErrorFrame::Decode(payload);
        if (!e.ok()) return e.status();
        last_retryable_ = e->retryable;
        return e->ToStatus();
      }
      default:
        return Status::ParseError("unexpected frame kind '" +
                                  std::string(1, kind) + "' in response");
    }
  }
}

}  // namespace smpx::server
