// smpxd wire protocol: length-prefixed frames over a byte stream.
//
// Every frame is `u32 LE payload length | u8 kind | payload`; the length
// counts the kind byte, so a frame is never empty and a reader can bound
// memory before trusting a peer (frames above kMaxFrameBytes are a
// protocol error and close the connection -- fail closed, never
// allocate-then-decide).
//
// A conversation is one request frame ('Q') from the client followed by a
// response stream from the server: zero or more data frames ('D', raw
// projected bytes in order) terminated by exactly one trailer ('T', the
// operation's result metadata: positions, span count, an optional cursor
// token) or one error frame ('E', status code + message + retryable
// flag). The retryable flag is the admission-control contract: a 'E'
// with retryable=1 means "nothing about the request is wrong, the
// server's global memory budget is momentarily exhausted -- back off and
// resend verbatim".
//
// Requests name server-side documents by path: the daemon owns the mmap
// and the boundary index; clients hold only cursor tokens (index/cursor.h
// format, opaque here), which is what makes a fleet of smpxd processes
// behind a dumb load balancer work -- any server can restore any token
// minted over the same (document, index, tables) triple.

#ifndef SMPX_SERVER_PROTOCOL_H_
#define SMPX_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace smpx::server {

/// Frame kind tags (the byte after the length prefix).
constexpr char kFrameRequest = 'Q';
constexpr char kFrameData = 'D';
constexpr char kFrameTrailer = 'T';
constexpr char kFrameError = 'E';

/// Upper bound on a single frame's payload (kind byte included). Request
/// frames carry DTD text and path lists, never documents, so this is
/// generous; data frames are produced by our own sinks well below it.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Target size of one data frame: the server-side socket sink coalesces
/// engine appends up to this and flushes, so a projection streams in
/// bounded pieces however large it is.
constexpr size_t kDataFrameBytes = 64u << 10;

enum class Op : uint8_t {
  kProject = 1,  ///< stream the whole document through the prefilter
  kSeek = 2,     ///< open a cursor at a byte offset / record ordinal
  kResume = 3,   ///< restore a client-held cursor token
};

/// One client request. `dtd_text` + `paths_text` identify (and, on a
/// cache miss, compile) the runtime tables; `doc_path` names the
/// server-side document.
struct Request {
  Op op = Op::kProject;
  std::string dtd_text;
  std::string paths_text;
  std::string doc_path;
  /// Engine window capacity; 0 = server default.
  uint64_t window = 0;
  /// kSeek: target byte offset, or record ordinal when by_record.
  uint64_t target = 0;
  bool by_record = false;
  /// kSeek/kResume: spans to stream; 0 = drain to the end.
  uint64_t count = 0;
  /// kResume: the cursor token to restore.
  std::string token;

  std::string Encode() const;
  static Result<Request> Decode(std::string_view payload);
};

/// Trailer of a successful response.
struct Trailer {
  uint64_t emitted_bytes = 0;    ///< data bytes streamed before this
  uint64_t records = 0;          ///< spans consumed (kSeek/kResume)
  uint64_t position = 0;         ///< cursor document offset after the op
  uint64_t out_position = 0;     ///< cursor projection offset after the op
  uint64_t record_position = 0;  ///< cursor record ordinal after the op
  bool at_end = false;
  std::string token;  ///< cursor token to continue from (kSeek/kResume)

  std::string Encode() const;
  static Result<Trailer> Decode(std::string_view payload);
};

/// Error frame payload: a Status plus the retryable admission flag.
struct ErrorFrame {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  bool retryable = false;

  std::string Encode() const;
  static Result<ErrorFrame> Decode(std::string_view payload);
  Status ToStatus() const;
};

/// Prepends the `u32 length | kind` header to `payload`.
std::string EncodeFrame(char kind, std::string_view payload);

/// Lowercase hex codec for cursor tokens on command lines and logs
/// (tokens are binary; hex keeps them shell- and copy/paste-safe).
std::string HexEncode(std::string_view bytes);
Result<std::string> HexDecode(std::string_view hex);

}  // namespace smpx::server

#endif  // SMPX_SERVER_PROTOCOL_H_
