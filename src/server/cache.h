// smpxd's keyed LRU caches: compiled runtime tables and per-document
// boundary indexes, both preloaded once and shared across connections.
//
// Two maps, two key shapes:
//   tables  : (Hash64 of DTD text, Hash64 of path-list text) -> Prefilter
//   indexes : (tables fingerprint, document path) -> mmap + BoundaryIndex
//
// Indexes are keyed by the *compiled* fingerprint, not the source texts:
// two textually different DTDs compiling to identical tables share index
// entries, and a recompiled table set can never be paired with a stale
// index (BoundaryIndex::Matches re-verifies the triple at fill time --
// fail closed, same contract as offline index files). Each index hit
// re-stats the file; a changed size or mtime evicts and rebuilds, so a
// rewritten document is never served through yesterday's checkpoints.
//
// Values are shared_ptr snapshots: eviction drops the cache's reference
// while in-flight requests keep theirs, so no lock is held across an
// engine run.

#ifndef SMPX_SERVER_CACHE_H_
#define SMPX_SERVER_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

#include "common/io.h"
#include "common/result.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "parallel/thread_pool.h"

namespace smpx::server {

/// An mmapped document plus its boundary index, verified as a matching
/// pair at construction. Immutable after fill; safe to share across
/// connection threads.
struct IndexedDoc {
  std::unique_ptr<MmapSource> source;
  index::BoundaryIndex index;
  uint64_t file_size = 0;
  int64_t file_mtime_ns = 0;

  std::string_view doc() const { return source->Contiguous(); }
};

struct CacheOptions {
  size_t max_tables = 16;
  size_t max_indexes = 16;
  /// Granularity for indexes built on a miss (1 = every record boundary,
  /// the pagination-friendly default for server workloads).
  uint64_t index_granularity = 1;
  /// Threads for in-memory index builds (<=0: hardware concurrency).
  int build_threads = 0;
};

class Cache {
 public:
  explicit Cache(const CacheOptions& opts = {});

  /// Returns the compiled prefilter for (dtd_text, paths_text), compiling
  /// and inserting on a miss. Compile failures are not cached: a
  /// malformed query costs its caller, not the next one.
  Result<std::shared_ptr<const core::Prefilter>> GetTables(
      const std::string& dtd_text, const std::string& paths_text);

  /// Returns the mmapped document + boundary index for `doc_path` under
  /// `pf`'s tables, mapping and indexing on a miss. Hits re-stat the file
  /// and rebuild if it changed underneath the cache.
  Result<std::shared_ptr<const IndexedDoc>> GetIndexedDoc(
      const core::Prefilter& pf, const std::string& doc_path);

  /// Entry counts, for tests and the daemon's status line.
  size_t tables_count() const;
  size_t indexes_count() const;

 private:
  struct TablesKey {
    uint64_t dtd_hash;
    uint64_t paths_hash;
    bool operator<(const TablesKey& o) const {
      return std::tie(dtd_hash, paths_hash) < std::tie(o.dtd_hash, o.paths_hash);
    }
  };
  struct IndexKey {
    uint64_t tables_fingerprint;
    std::string doc_path;
    bool operator<(const IndexKey& o) const {
      return std::tie(tables_fingerprint, doc_path) <
             std::tie(o.tables_fingerprint, o.doc_path);
    }
  };

  // One LRU shape for both maps: a recency list of keys, map values carry
  // the list iterator.
  template <typename K, typename V>
  struct Lru {
    struct Slot {
      std::shared_ptr<const V> value;
      typename std::list<K>::iterator where;
    };
    std::map<K, Slot> map;
    std::list<K> order;  // front = most recent

    std::shared_ptr<const V> Get(const K& key) {
      auto it = map.find(key);
      if (it == map.end()) return nullptr;
      order.splice(order.begin(), order, it->second.where);
      return it->second.value;
    }
    void Put(const K& key, std::shared_ptr<const V> value, size_t cap) {
      auto it = map.find(key);
      if (it != map.end()) {
        it->second.value = std::move(value);
        order.splice(order.begin(), order, it->second.where);
        return;
      }
      order.push_front(key);
      map.emplace(key, Slot{std::move(value), order.begin()});
      while (map.size() > cap && !order.empty()) {
        map.erase(order.back());
        order.pop_back();
      }
    }
    void Erase(const K& key) {
      auto it = map.find(key);
      if (it == map.end()) return;
      order.erase(it->second.where);
      map.erase(it);
    }
  };

  CacheOptions opts_;
  parallel::ThreadPool pool_;
  // Serializes index builds: one build at a time owns pool_, and a miss
  // observed by several connections costs one build, not N.
  std::mutex build_mu_;
  mutable std::mutex mu_;
  Lru<TablesKey, core::Prefilter> tables_;
  Lru<IndexKey, IndexedDoc> indexes_;
};

}  // namespace smpx::server

#endif  // SMPX_SERVER_CACHE_H_
