// Client side of the smpxd protocol: connect to an endpoint, send one
// request, stream the data frames into an OutputSink, and return the
// trailer. Used by `smpx_cli --connect`, the server tests, and the QPS
// bench; small enough to embed anywhere.

#ifndef SMPX_SERVER_CLIENT_H_
#define SMPX_SERVER_CLIENT_H_

#include <string>

#include "common/io.h"
#include "common/result.h"
#include "server/protocol.h"
#include "server/socket.h"

namespace smpx::server {

class Client {
 public:
  /// Connects to "unix:PATH", "tcp:HOST:PORT", or a bare socket path.
  static Result<Client> Connect(const std::string& endpoint);

  /// Sends `req` and consumes the response stream: data frames append to
  /// `out` (may be null to discard) in order, the trailer is returned.
  /// A server error frame becomes its Status -- check
  /// `status.code() == StatusCode::kResourceExhausted` together with
  /// `last_error_retryable()` for the admission back-off contract. The
  /// connection stays usable after a retryable rejection; any transport
  /// or protocol failure poisons it (reconnect to continue).
  Result<Trailer> Call(const Request& req, OutputSink* out);

  /// True when the most recent Call failed with a server error frame
  /// marked retryable (admission rejection).
  bool last_error_retryable() const { return last_retryable_; }

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  bool last_retryable_ = false;
};

}  // namespace smpx::server

#endif  // SMPX_SERVER_CLIENT_H_
