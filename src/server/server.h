// The smpxd server: accept loops, per-connection request dispatch, and
// global memory admission control.
//
// Threading model: one blocking accept loop per listener (unix, tcp),
// one thread per live connection. A connection serves any number of
// sequential conversations (request -> data* -> trailer|error) and dies
// on the first protocol violation or socket error. All document and
// table state lives in the shared Cache; a connection thread only ever
// holds shared_ptr snapshots, so shutdown and eviction never race a
// running projection.
//
// Admission control: every request must reserve `per_request_bytes`
// from a global budget (`max_buffer_bytes`) before any work happens.
// When the budget is exhausted the server answers with an error frame
// (kResourceExhausted, retryable=1) and keeps the connection open -- the
// client backs off and resends. This bounds the daemon's working memory
// at budget + cache, independent of how many clients pile on.

#ifndef SMPX_SERVER_SERVER_H_
#define SMPX_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/cache.h"
#include "server/protocol.h"
#include "server/socket.h"

namespace smpx::server {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the unix listener.
  std::string unix_path;
  /// Loopback TCP port; -1 disables, 0 picks an ephemeral port.
  int tcp_port = -1;
  /// Global admission budget across all in-flight requests.
  uint64_t max_buffer_bytes = 64u << 20;
  /// Bytes one request reserves from the budget (engine window + frame
  /// coalescing buffer + decode scratch, rounded up).
  uint64_t per_request_bytes = 4u << 20;
  /// Default engine window when the request leaves `window` at 0.
  uint64_t default_window = 1u << 20;
  CacheOptions cache;
};

/// Counting semaphore over a byte budget; try-acquire only (admission
/// rejections must not block the connection thread).
class Admission {
 public:
  explicit Admission(uint64_t budget) : available_(budget) {}

  bool TryAcquire(uint64_t bytes);
  void Release(uint64_t bytes);
  uint64_t available() const { return available_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> available_;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();

  /// Binds the configured listeners and spawns the accept threads.
  Status Start();
  /// Unblocks the accept loops, closes the listeners, and joins every
  /// thread (live connections finish their current conversation's frame
  /// writes and then see closed sockets).
  void Stop();

  /// Actual TCP port after Start() (useful with tcp_port = 0).
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return opts_.unix_path; }

  Cache& cache() { return cache_; }
  const Admission& admission() const { return admission_; }

 private:
  void AcceptLoop(Fd* listener);
  void ServeConnection(Fd conn);
  /// One conversation; returns false when the connection should close.
  bool ServeOne(const Fd& conn);
  Status Dispatch(const Fd& conn, const Request& req);

  ServerOptions opts_;
  Cache cache_;
  Admission admission_;
  int tcp_port_ = -1;
  Fd unix_listener_;
  Fd tcp_listener_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> accept_threads_;
  // Connection threads run detached; Stop() shuts their sockets down to
  // unpark blocked reads and waits for the live count to drain, so no
  // thread outlives the Server it captured.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  size_t live_conns_ = 0;
  std::set<int> conn_fds_;
};

}  // namespace smpx::server

#endif  // SMPX_SERVER_SERVER_H_
