#!/usr/bin/env bash
# Line-coverage gate over the ctest suite, for clang source-based coverage
# (-fprofile-instr-generate -fcoverage-mapping).
#
# Usage: ci/check_coverage.sh BUILD_DIR [MIN_PERCENT]
#
# Expects the test binaries in BUILD_DIR to have been run with
# LLVM_PROFILE_FILE="BUILD_DIR/profraw/%p-%m.profraw" (ctest does this via
# the CI workflow). Merges the profiles, exports an llvm-cov summary over
# the library sources (tests/benches/examples excluded), and fails when
# total line coverage drops below the gate -- the checked-in minimum below
# is the contract; raise it as coverage grows, never lower it to make a
# red build green.
set -euo pipefail

BUILD_DIR=${1:?usage: check_coverage.sh BUILD_DIR [MIN_PERCENT]}
MIN=${2:-${SMPX_MIN_LINE_COVERAGE:-78}}

cd "$BUILD_DIR"
if ! ls profraw/*.profraw >/dev/null 2>&1; then
  echo "no .profraw files under $BUILD_DIR/profraw -- did ctest run with" \
       "LLVM_PROFILE_FILE set?" >&2
  exit 1
fi
llvm-profdata merge -sparse profraw/*.profraw -o merged.profdata

# Every instrumented ctest binary contributes its mapping.
objects=()
first=""
for bin in ./*_test; do
  [ -x "$bin" ] || continue
  if [ -z "$first" ]; then first="$bin"; else objects+=(-object "$bin"); fi
done
if [ -z "$first" ]; then
  echo "no test binaries found in $BUILD_DIR" >&2
  exit 1
fi

llvm-cov export "$first" "${objects[@]}" \
  -instr-profile merged.profdata \
  -ignore-filename-regex='(tests|bench|examples|tools)/' \
  -summary-only > coverage.json

python3 - "$MIN" <<'PY'
import json
import sys

gate = float(sys.argv[1])
totals = json.load(open("coverage.json"))["data"][0]["totals"]
lines = totals["lines"]["percent"]
funcs = totals["functions"]["percent"]
print(f"library line coverage: {lines:.2f}% "
      f"(functions: {funcs:.2f}%, gate: {gate:.2f}%)")
if lines < gate:
    print(f"FAIL: line coverage {lines:.2f}% is below the "
          f"checked-in minimum {gate:.2f}%", file=sys.stderr)
    sys.exit(1)
PY
