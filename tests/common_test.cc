// Tests for the common substrate: Status/Result, string helpers, streams,
// and the sliding window (including eviction callbacks and growth).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/io.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace smpx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token at offset 12");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token at offset 12");
  EXPECT_EQ(s.ToString(), "ParseError: bad token at offset 12");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "x");
}

Status FailingHelper() { return Status::IoError("disk on fire"); }

Status Propagates() {
  SMPX_RETURN_IF_ERROR(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIoError);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  SMPX_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("<description", "<desc"));
  EXPECT_FALSE(StartsWith("<d", "<desc"));
  EXPECT_TRUE(EndsWith("foo.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, Split) {
  auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, NameCharClasses) {
  EXPECT_TRUE(IsNameStartChar('a'));
  EXPECT_TRUE(IsNameStartChar('_'));
  EXPECT_FALSE(IsNameStartChar('1'));
  EXPECT_TRUE(IsNameChar('1'));
  EXPECT_TRUE(IsNameChar('-'));
  EXPECT_FALSE(IsNameChar('>'));
  EXPECT_FALSE(IsNameChar('/'));
  EXPECT_FALSE(IsNameChar(' '));
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00B");
  EXPECT_EQ(HumanBytes(2.5 * 1024 * 1024), "2.50MB");
}

TEST(MemoryInputStreamTest, ReadsInChunks) {
  MemoryInputStream in("hello world");
  char buf[128];  // Read fills up to `len` bytes: the buffer must hold them
  auto r = in.Read(buf, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 4u);
  EXPECT_EQ(std::string(buf, 4), "hell");
  r = in.Read(buf, 100);
  EXPECT_EQ(*r, 7u);
  EXPECT_EQ(std::string(buf, 7), "o world");
  r = in.Read(buf, 4);
  EXPECT_EQ(*r, 0u) << "EOF reached";
}

TEST(FileRoundTripTest, WriteThenRead) {
  std::string path = testing::TempDir() + "/smpx_io_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "round trip \0 data").ok());
  auto r = ReadFileToString(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "round trip \0 data");
  std::remove(path.c_str());
}

TEST(FileRoundTripTest, MissingFileIsIoError) {
  auto r = ReadFileToString("/nonexistent/smpx/file.xml");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SlidingWindowTest, ReadsWholeStreamThroughSmallWindow) {
  std::string data(1000, '\0');
  std::iota(data.begin(), data.end(), 0);
  MemoryInputStream in(data);
  SlidingWindow win(&in, 64);
  for (uint64_t pos = 0; pos < data.size(); ++pos) {
    win.set_lock(pos);
    ASSERT_EQ(win.Ensure(pos, 1), 1u) << pos;
    EXPECT_EQ(win.At(pos), data[static_cast<size_t>(pos)]);
  }
  EXPECT_TRUE(win.AtEnd(data.size()));
  EXPECT_FALSE(win.AtEnd(0));
}

TEST(SlidingWindowTest, EvictionSeesEveryByteInOrder) {
  std::string data;
  for (int i = 0; i < 500; ++i) data += static_cast<char>('a' + i % 26);
  MemoryInputStream in(data);
  SlidingWindow win(&in, 64);
  std::string evicted;
  uint64_t expected_next = 0;
  win.set_evict_fn([&](uint64_t begin, std::string_view bytes) {
    EXPECT_EQ(begin, expected_next);
    expected_next = begin + bytes.size();
    evicted.append(bytes);
  });
  for (uint64_t pos = 0; pos < data.size(); pos += 10) {
    win.set_lock(pos);
    win.Ensure(pos, 10);
  }
  win.set_lock(data.size());
  win.Ensure(data.size(), 1);
  EXPECT_EQ(evicted, data);
}

TEST(SlidingWindowTest, GrowsWhenLockedSpanExceedsCapacity) {
  std::string data(4096, 'q');
  MemoryInputStream in(data);
  SlidingWindow win(&in, 64);
  win.set_lock(0);  // nothing may be evicted
  ASSERT_EQ(win.Ensure(0, 2000), 2000u);
  EXPECT_GE(win.capacity(), 2000u);
  EXPECT_GE(win.max_capacity_used(), 2000u);
  std::string_view v = win.View(0, 2000);
  EXPECT_EQ(v.substr(0, 5), "qqqqq");
}

TEST(SlidingWindowTest, ViewAcrossRefillKeepsAbsolutePositions) {
  std::string data;
  for (int i = 0; i < 300; ++i) data += std::to_string(i % 10);
  MemoryInputStream in(data);
  SlidingWindow win(&in, 64);
  win.set_lock(250);
  std::string_view v = win.View(250, 20);
  ASSERT_GE(v.size(), 20u);
  EXPECT_EQ(v.substr(0, 3), data.substr(250, 3));
}

TEST(SlidingWindowTest, SpanAndRefillAtReturnMaximalResidentViews) {
  std::string data;
  for (int i = 0; i < 300; ++i) data += static_cast<char>('a' + i % 26);
  MemoryInputStream in(data);
  SlidingWindow win(&in, 64);

  // Nothing resident yet: Span must not touch the stream.
  EXPECT_TRUE(win.Span(0).empty());

  std::string_view first = win.RefillAt(0);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, win.Span(0));
  EXPECT_EQ(first.substr(0, 3), data.substr(0, 3));
  // The span is maximal: it runs to the window limit.
  EXPECT_EQ(first.size(), static_cast<size_t>(win.limit()));

  // A mid-span position returns the resident suffix.
  std::string_view mid = win.Span(10);
  EXPECT_EQ(mid.size(), first.size() - 10);
  EXPECT_EQ(mid.substr(0, 3), data.substr(10, 3));

  // Past the resident limit Span is empty until RefillAt slides forward.
  uint64_t beyond = win.limit() + 5;
  EXPECT_TRUE(win.Span(beyond).empty());
  win.set_lock(beyond);
  std::string_view later = win.RefillAt(beyond);
  ASSERT_FALSE(later.empty());
  EXPECT_EQ(later.substr(0, 3),
            data.substr(static_cast<size_t>(beyond), 3));

  // At end of stream RefillAt returns empty.
  win.set_lock(data.size());
  EXPECT_TRUE(win.RefillAt(data.size()).empty());
}

TEST(SlidingWindowTest, JumpFarBeyondBufferBridgesGap) {
  std::string data(10000, 'x');
  data[9000] = 'Y';
  MemoryInputStream in(data);
  SlidingWindow win(&in, 64);
  std::string evicted;
  win.set_evict_fn([&](uint64_t, std::string_view bytes) {
    evicted.append(bytes);
  });
  win.set_lock(9000);
  ASSERT_GE(win.Ensure(9000, 1), 1u);
  EXPECT_EQ(win.At(9000), 'Y');
  EXPECT_EQ(evicted.size(), 9000u) << "every skipped byte passed the hook";
}

TEST(SlidingWindowTest, EnsurePastEofReturnsShortCount) {
  MemoryInputStream in("abc");
  SlidingWindow win(&in, 64);
  EXPECT_EQ(win.Ensure(0, 10), 3u);
  EXPECT_EQ(win.Ensure(3, 1), 0u);
  EXPECT_TRUE(win.AtEnd(3));
}

TEST(HashStabilityTest, Hash64ValuesArePinnedForever) {
  // These values are baked into every saved boundary-index file and
  // cursor token (document digests, table fingerprints, trailing content
  // hashes). A change here is a FORMAT BREAK: bump the index/token format
  // version instead of updating the expectations. The first two are the
  // reference XXH64 vectors, pinning cross-implementation compatibility.
  EXPECT_EQ(Hash64(""), 17241709254077376921ull);   // xxh64 ef46db3751d8e999
  EXPECT_EQ(Hash64("abc"), 4952883123889572249ull);  // xxh64 44bc2cf5ad770999
  EXPECT_EQ(Hash64("smpx boundary index"), 11744050980586103378ull);
  std::string long_input;
  for (int i = 0; i < 1000; ++i) {
    long_input += static_cast<char>('a' + i % 26);
  }
  EXPECT_EQ(Hash64(long_input), 10716435957372782249ull);
  EXPECT_EQ(Hash64("abc", 77), 3540267617390289244ull);
  EXPECT_EQ(HashCombine(1, 2), 4498758804896154761ull);
  // Single-byte sensitivity: flipping any one byte moves the hash.
  EXPECT_NE(Hash64("smpx boundary index"), Hash64("smpx boundary inde_"));
}

TEST(HashStabilityTest, Hash64StreamMatchesOneShotAtEverySplit) {
  // The chunked index build digests the document incrementally; its files
  // interoperate with Matches() only if the streaming digest is EXACTLY
  // the one-shot Hash64. Cover all tail lengths (0..31), stripe
  // boundaries, and multi-piece splits.
  std::string input;
  for (int i = 0; i < 300; ++i) {
    input += static_cast<char>('A' + (i * 7) % 61);
  }
  for (size_t len : {size_t{0}, size_t{1}, size_t{31}, size_t{32},
                     size_t{33}, size_t{64}, size_t{100}, input.size()}) {
    std::string_view piece(input.data(), len);
    const uint64_t want = Hash64(piece);
    for (size_t split = 0; split <= len; ++split) {
      Hash64Stream h;
      h.Update(piece.substr(0, split));
      h.Update(piece.substr(split));
      EXPECT_EQ(h.Digest(), want) << "len=" << len << " split=" << split;
    }
    // Byte-at-a-time, and Digest() must be repeatable (non-destructive).
    Hash64Stream one;
    for (size_t i = 0; i < len; ++i) one.Update(piece.substr(i, 1));
    EXPECT_EQ(one.Digest(), want) << "byte-at-a-time len=" << len;
    EXPECT_EQ(one.Digest(), want) << "second Digest() call len=" << len;
  }
  // Seeded variant agrees too.
  Hash64Stream seeded(77);
  seeded.Update("ab");
  seeded.Update("c");
  EXPECT_EQ(seeded.Digest(), Hash64("abc", 77));
}

TEST(FileSourceTest, ReadsAtArbitraryOffsetsWithoutMapping) {
  std::string payload;
  for (int i = 0; i < 5000; ++i) payload += static_cast<char>('a' + i % 26);
  std::string path = "/tmp/smpx_filesource_test.bin";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());

  auto src = FileSource::Open(path);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  EXPECT_EQ((*src)->size(), payload.size());
  // FileSource deliberately offers no contiguous view.
  EXPECT_EQ((*src)->Contiguous().data(), nullptr);

  char buf[512];
  for (uint64_t off : {uint64_t{0}, uint64_t{1}, uint64_t{4999},
                       uint64_t{4000}, uint64_t{2600}}) {
    auto n = (*src)->ReadAt(off, buf, sizeof(buf));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    size_t want = std::min<size_t>(sizeof(buf), payload.size() - off);
    ASSERT_EQ(*n, want) << "offset " << off;
    EXPECT_EQ(std::string_view(buf, *n), std::string_view(payload).substr(off, want));
  }
  // Reads at or past EOF return zero bytes, not an error.
  auto eof = (*src)->ReadAt(payload.size(), buf, sizeof(buf));
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smpx
