// Unit tests for the composable sink layer: SpillSink budget edges (0, 1,
// exactly-at-budget, spill-then-replay, reuse after Clear), BufferedFileSink
// write coalescing and sticky-failure semantics, FileSink short-write
// reporting with idempotent Flush, OrderedCommitSink in-order/out-of-order
// commit, truncation, duplicate installs, and concurrent installs from a
// thread pool.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/strings.h"
#include "parallel/thread_pool.h"

namespace smpx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- SpillSink ------------------------------------------------------------

TEST(SpillSinkTest, UnlimitedNeverSpills) {
  SpillSink sink;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sink.Append("0123456789").ok());
  }
  EXPECT_FALSE(sink.spilled());
  EXPECT_EQ(sink.bytes_written(), 1000u);
  EXPECT_EQ(sink.resident_bytes(), 1000u);
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str().size(), 1000u);
}

TEST(SpillSinkTest, ZeroBudgetSpillsFromTheFirstByte) {
  SpillSink sink(0);
  ASSERT_TRUE(sink.Append("x").ok());
  EXPECT_TRUE(sink.spilled());
  EXPECT_EQ(sink.resident_bytes(), 0u);
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str(), "x");
}

TEST(SpillSinkTest, OneByteBudgetHoldsExactlyOneByte) {
  SpillSink sink(1);
  ASSERT_TRUE(sink.Append("a").ok());
  EXPECT_FALSE(sink.spilled());  // exactly at budget: still in memory
  ASSERT_TRUE(sink.Append("b").ok());
  EXPECT_TRUE(sink.spilled());
  EXPECT_EQ(sink.resident_bytes(), 0u);
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str(), "ab");
}

TEST(SpillSinkTest, ExactlyAtBudgetStaysInMemory) {
  SpillSink sink(10);
  ASSERT_TRUE(sink.Append("01234").ok());
  ASSERT_TRUE(sink.Append("56789").ok());
  EXPECT_FALSE(sink.spilled());
  EXPECT_EQ(sink.resident_bytes(), 10u);
  // One more byte moves everything to disk.
  ASSERT_TRUE(sink.Append("!").ok());
  EXPECT_TRUE(sink.spilled());
  EXPECT_EQ(sink.resident_bytes(), 0u);
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str(), "0123456789!");
}

TEST(SpillSinkTest, SpillThenReplayPreservesOrderAndStaysAppendable) {
  SpillSink sink(8);
  std::string expected;
  for (int i = 0; i < 50; ++i) {
    std::string piece = "piece" + std::to_string(i) + ";";
    expected += piece;
    ASSERT_TRUE(sink.Append(piece).ok());
  }
  EXPECT_TRUE(sink.spilled());
  StringSink out1;
  ASSERT_TRUE(sink.CopyTo(&out1).ok());
  EXPECT_EQ(out1.str(), expected);
  // Replay is repeatable and appends continue at the end.
  ASSERT_TRUE(sink.Append("tail").ok());
  expected += "tail";
  StringSink out2;
  ASSERT_TRUE(sink.CopyTo(&out2).ok());
  EXPECT_EQ(out2.str(), expected);
  EXPECT_EQ(sink.bytes_written(), expected.size());
}

TEST(SpillSinkTest, ClearMakesTheSinkReusable) {
  SpillSink sink(4);
  ASSERT_TRUE(sink.Append("0123456789").ok());
  EXPECT_TRUE(sink.spilled());
  sink.Clear();
  EXPECT_FALSE(sink.spilled());
  EXPECT_EQ(sink.bytes_written(), 0u);
  ASSERT_TRUE(sink.Append("ab").ok());
  EXPECT_FALSE(sink.spilled());
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str(), "ab");
}

TEST(SpillSinkTest, ForceSpillParksResidentBytesOnDisk) {
  SpillSink sink(1 << 20);
  ASSERT_TRUE(sink.Append("hello").ok());
  EXPECT_FALSE(sink.spilled());
  ASSERT_TRUE(sink.ForceSpill().ok());
  EXPECT_TRUE(sink.spilled());
  EXPECT_EQ(sink.resident_bytes(), 0u);
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str(), "hello");

  // Unlimited sinks are deliberately memory-backed: ForceSpill is a no-op.
  SpillSink unlimited;
  ASSERT_TRUE(unlimited.Append("hello").ok());
  ASSERT_TRUE(unlimited.ForceSpill().ok());
  EXPECT_FALSE(unlimited.spilled());
}

// --- BufferedFileSink -----------------------------------------------------

TEST(BufferedFileSinkTest, CoalescesSmallAppendsAndFlushes) {
  std::string path = TempPath("buffered_sink_test.bin");
  std::string expected;
  {
    auto sink = BufferedFileSink::Open(path, /*buffer_capacity=*/64);
    ASSERT_TRUE(sink.ok());
    for (int i = 0; i < 100; ++i) {
      std::string piece = std::to_string(i) + ",";
      expected += piece;
      ASSERT_TRUE((*sink)->Append(piece).ok());
    }
    // A large append bypasses the buffer without reordering.
    std::string big(300, 'x');
    expected += big;
    ASSERT_TRUE((*sink)->Append(big).ok());
    expected += "end";
    ASSERT_TRUE((*sink)->Append("end").ok());
    EXPECT_EQ((*sink)->bytes_written(), expected.size());
    ASSERT_TRUE((*sink)->Flush().ok());
  }
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, expected);
  std::remove(path.c_str());
}

TEST(BufferedFileSinkTest, DestructorFlushesWithoutExplicitFlush) {
  std::string path = TempPath("buffered_sink_dtor.bin");
  {
    auto sink = BufferedFileSink::Open(path, 1 << 16);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE((*sink)->Append("pending bytes").ok());
  }
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "pending bytes");
  std::remove(path.c_str());
}

#ifdef __linux__
TEST(BufferedFileSinkTest, FailureIsStickyOnFullDevice) {
  std::FILE* f = std::fopen("/dev/full", "wb");
  if (f == nullptr) GTEST_SKIP() << "/dev/full unavailable";
  auto sink = BufferedFileSink::Wrap(f, /*buffer_capacity=*/16);
  std::string big(1 << 16, 'z');
  Status s = sink->Append(big);  // bypasses the buffer, hits the device
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("of " + std::to_string(big.size()) + " bytes"),
            std::string_view::npos)
      << s.ToString();
  // Sticky and idempotent: identical error, no further writes attempted.
  EXPECT_EQ(sink->Flush(), s);
  EXPECT_EQ(sink->Flush(), s);
  EXPECT_EQ(sink->Append("more"), s);
  sink.reset();
  std::fclose(f);
}

TEST(FileSinkTest, ShortWriteReportsByteCountsAndFlushIsIdempotent) {
  // FileSink::Open cannot open /dev/full for "wb" truncation? It can --
  // opening succeeds, writes fail with ENOSPC once stdio flushes.
  auto sink = FileSink::Open("/dev/full");
  if (!sink.ok()) GTEST_SKIP() << "/dev/full unavailable";
  std::string big(1 << 20, 'q');  // larger than any stdio buffer
  Status s = (*sink)->Append(big);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("short write"), std::string_view::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("of " + std::to_string(big.size()) + " bytes"),
            std::string_view::npos)
      << s.ToString();
  Status f1 = (*sink)->Flush();
  Status f2 = (*sink)->Flush();
  EXPECT_EQ(f1, s);  // the original cause, not a new flush error
  EXPECT_EQ(f2, f1);
  EXPECT_EQ((*sink)->Append("x"), s);
}
#endif  // __linux__

// --- ParseByteSize --------------------------------------------------------

TEST(ParseByteSizeTest, AcceptsPlainAndSuffixedSizes) {
  EXPECT_EQ(*ParseByteSize("0"), 0u);
  EXPECT_EQ(*ParseByteSize("4096"), 4096u);
  EXPECT_EQ(*ParseByteSize("64K"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("64k"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("64KiB"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("64kb"), 64u << 10);
  EXPECT_EQ(*ParseByteSize("1M"), 1u << 20);
  EXPECT_EQ(*ParseByteSize("1MiB"), 1u << 20);
  EXPECT_EQ(*ParseByteSize("2G"), 2ull << 30);
  EXPECT_EQ(*ParseByteSize(" 8M "), 8u << 20);
}

TEST(ParseByteSizeTest, RejectsGarbageAndOverflow) {
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("M").ok());
  EXPECT_FALSE(ParseByteSize("-1").ok());
  EXPECT_FALSE(ParseByteSize("12Q").ok());
  EXPECT_FALSE(ParseByteSize("1MiBs").ok());
  EXPECT_FALSE(ParseByteSize("99999999999999999999").ok());
  EXPECT_FALSE(ParseByteSize("99999999999999999G").ok());
}

// --- OrderedCommitSink ----------------------------------------------------

std::unique_ptr<SpillSink> Segment(const std::string& content,
                                   size_t budget = SpillSink::kUnlimited) {
  auto seg = std::make_unique<SpillSink>(budget);
  EXPECT_TRUE(seg->Append(content).ok());
  return seg;
}

TEST(OrderedCommitSinkTest, InOrderInstallsStreamImmediately) {
  StringSink down;
  OrderedCommitSink commit(&down, 3);
  ASSERT_TRUE(commit.Install(0, Segment("a")).ok());
  EXPECT_EQ(down.str(), "a");
  EXPECT_EQ(commit.frontier(), 1u);
  ASSERT_TRUE(commit.Install(1, Segment("b")).ok());
  EXPECT_EQ(down.str(), "ab");
  ASSERT_TRUE(commit.Install(2, Segment("c")).ok());
  EXPECT_EQ(down.str(), "abc");
  EXPECT_TRUE(commit.finished());
  EXPECT_EQ(commit.committed_bytes(), 3u);
}

TEST(OrderedCommitSinkTest, OutOfOrderCompletionCommitsInDocumentOrder) {
  StringSink down;
  OrderedCommitSink commit(&down, 4);
  ASSERT_TRUE(commit.Install(2, Segment("c", /*budget=*/4)).ok());
  ASSERT_TRUE(commit.Install(1, Segment("b", /*budget=*/4)).ok());
  EXPECT_EQ(down.str(), "");  // segment 0 gates everything
  EXPECT_EQ(commit.frontier(), 0u);
  ASSERT_TRUE(commit.Install(0, Segment("a", /*budget=*/4)).ok());
  EXPECT_EQ(down.str(), "abc");  // the parked run drains in one go
  EXPECT_EQ(commit.frontier(), 3u);
  ASSERT_TRUE(commit.Install(3, Segment("d", /*budget=*/4)).ok());
  EXPECT_EQ(down.str(), "abcd");
  EXPECT_TRUE(commit.finished());
}

TEST(OrderedCommitSinkTest, NullSegmentsAreEmpty) {
  StringSink down;
  OrderedCommitSink commit(&down, 2);
  ASSERT_TRUE(commit.Install(0, nullptr).ok());
  ASSERT_TRUE(commit.Install(1, Segment("x")).ok());
  EXPECT_EQ(down.str(), "x");
  EXPECT_TRUE(commit.finished());
}

TEST(OrderedCommitSinkTest, TruncateStopsTheFrontierAndDropsPending) {
  StringSink down;
  OrderedCommitSink commit(&down, 4);
  ASSERT_TRUE(commit.Install(2, Segment("c")).ok());
  ASSERT_TRUE(commit.Install(0, Segment("a")).ok());
  commit.Truncate(2);
  ASSERT_TRUE(commit.Install(1, Segment("b")).ok());
  EXPECT_EQ(down.str(), "ab");  // segment 2's content was dropped
  EXPECT_TRUE(commit.finished());
  // Installs past the truncation point are ignored.
  ASSERT_TRUE(commit.Install(3, Segment("d")).ok());
  EXPECT_EQ(down.str(), "ab");
  // Truncate keeps the lowest limit across calls.
  commit.Truncate(3);
  EXPECT_TRUE(commit.finished());
}

TEST(OrderedCommitSinkTest, DuplicateInstallIsAnError) {
  StringSink down;
  OrderedCommitSink commit(&down, 2);
  ASSERT_TRUE(commit.Install(0, Segment("a")).ok());
  Status s = commit.Install(0, Segment("again"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(commit.status(), s);
}

TEST(OrderedCommitSinkTest, ParkedSegmentsWithBudgetsAreForceSpilled) {
  StringSink down;
  OrderedCommitSink commit(&down, 2);
  auto seg = Segment("parked content", /*budget=*/1 << 20);
  SpillSink* raw = seg.get();
  ASSERT_TRUE(commit.Install(1, std::move(seg)).ok());
  // Waiting ahead of the frontier must not cost memory.
  EXPECT_TRUE(raw->spilled());
  EXPECT_EQ(raw->resident_bytes(), 0u);
  ASSERT_TRUE(commit.Install(0, Segment("front ", 1 << 20)).ok());
  EXPECT_EQ(down.str(), "front parked content");
}

/// Downstream sink that accepts `limit` bytes, then fails every Append.
class FailingSink : public OutputSink {
 public:
  explicit FailingSink(size_t limit) : limit_(limit) {}
  Status Append(std::string_view data) override {
    if (bytes_written_ + data.size() > limit_) {
      return Status::IoError("downstream full");
    }
    ok_.append(data);
    bytes_written_ += data.size();
    return Status::Ok();
  }
  const std::string& str() const { return ok_; }

 private:
  size_t limit_;
  std::string ok_;
};

TEST(OrderedCommitSinkTest, CommitErrorStopsTheFrontierForGood) {
  // A failed replay must not be skipped over: later installs may not
  // stream past the hole, no matter how healthy the downstream looks.
  FailingSink down(4);
  OrderedCommitSink commit(&down, 3);
  ASSERT_TRUE(commit.Install(0, Segment("okay")).ok());
  EXPECT_EQ(down.str(), "okay");
  Status s = commit.Install(1, Segment("does not fit"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(commit.frontier(), 1u);
  // The next segment is accepted but never committed.
  EXPECT_FALSE(commit.Install(2, Segment("later")).ok());
  EXPECT_EQ(down.str(), "okay");
  EXPECT_EQ(commit.frontier(), 1u);
  EXPECT_FALSE(commit.finished());
  EXPECT_EQ(commit.status(), s);
}

// --- SpillArena -----------------------------------------------------------

TEST(SpillArenaTest, ManySinksShareOneBackingFile) {
  SpillArena arena;
  EXPECT_EQ(arena.open_files(), 0);  // lazily opened
  std::vector<std::unique_ptr<SpillSink>> sinks;
  std::vector<std::string> expected(40);
  for (size_t i = 0; i < 40; ++i) {
    sinks.push_back(std::make_unique<SpillSink>(/*budget=*/4, &arena));
    for (int j = 0; j < 8; ++j) {
      std::string piece = "s" + std::to_string(i) + "p" + std::to_string(j);
      expected[i] += piece;
      ASSERT_TRUE(sinks[i]->Append(piece).ok());
    }
    EXPECT_TRUE(sinks[i]->spilled());
    EXPECT_EQ(sinks[i]->resident_bytes(), 0u);
  }
  EXPECT_EQ(arena.open_files(), 1);
  for (size_t i = 0; i < 40; ++i) {
    StringSink out;
    ASSERT_TRUE(sinks[i]->CopyTo(&out).ok());
    EXPECT_EQ(out.str(), expected[i]);
  }
}

TEST(SpillArenaTest, ReplayIsRepeatableAndAppendsContinueInOrder) {
  SpillArena arena;
  SpillSink sink(/*budget=*/8, &arena);
  std::string expected;
  for (int i = 0; i < 50; ++i) {
    std::string piece = "piece" + std::to_string(i) + ";";
    expected += piece;
    ASSERT_TRUE(sink.Append(piece).ok());
  }
  EXPECT_TRUE(sink.spilled());
  StringSink out1;
  ASSERT_TRUE(sink.CopyTo(&out1).ok());
  EXPECT_EQ(out1.str(), expected);
  ASSERT_TRUE(sink.Append("tail").ok());
  expected += "tail";
  StringSink out2;
  ASSERT_TRUE(sink.CopyTo(&out2).ok());
  EXPECT_EQ(out2.str(), expected);
  EXPECT_EQ(sink.bytes_written(), expected.size());
}

TEST(SpillArenaTest, ForceSpillParksIntoArenaAndClearReleases) {
  SpillArena arena;
  SpillSink sink(/*budget=*/1 << 20, &arena);
  ASSERT_TRUE(sink.Append("hello").ok());
  EXPECT_FALSE(sink.spilled());
  ASSERT_TRUE(sink.ForceSpill().ok());
  EXPECT_TRUE(sink.spilled());
  EXPECT_EQ(sink.resident_bytes(), 0u);
  StringSink out;
  ASSERT_TRUE(sink.CopyTo(&out).ok());
  EXPECT_EQ(out.str(), "hello");
  sink.Clear();
  EXPECT_FALSE(sink.spilled());
  // After the last extent is released the arena truncates its file but
  // keeps the fd for the next epoch.
  EXPECT_EQ(arena.open_files(), 1);
  ASSERT_TRUE(sink.Append("again-0123456789").ok());
  ASSERT_TRUE(sink.ForceSpill().ok());
  StringSink out2;
  ASSERT_TRUE(sink.CopyTo(&out2).ok());
  EXPECT_EQ(out2.str(), "again-0123456789");
}

TEST(SpillArenaTest, ConcurrentSpillsFromAPoolStayIsolated) {
  for (int round = 0; round < 10; ++round) {
    SpillArena arena;
    const size_t n = 16;
    std::vector<std::unique_ptr<SpillSink>> sinks;
    std::vector<std::string> expected(n);
    for (size_t i = 0; i < n; ++i) {
      sinks.push_back(std::make_unique<SpillSink>(/*budget=*/3, &arena));
    }
    parallel::ThreadPool pool(5);
    pool.RunAndWait(n, [&](size_t i) {
      for (int j = 0; j < 64; ++j) {
        std::string piece =
            "w" + std::to_string(i) + "." + std::to_string(j) + "|";
        expected[i] += piece;
        ASSERT_TRUE(sinks[i]->Append(piece).ok());
      }
    });
    EXPECT_EQ(arena.open_files(), 1);
    for (size_t i = 0; i < n; ++i) {
      StringSink out;
      ASSERT_TRUE(sinks[i]->CopyTo(&out).ok());
      EXPECT_EQ(out.str(), expected[i]);
    }
  }
}

TEST(OrderedCommitSinkTest, ParkedBudgetedSegmentsShareTheArenaFile) {
  SpillArena arena;
  StringSink down;
  const size_t n = 12;
  OrderedCommitSink commit(&down, n);
  std::string expected;
  std::vector<std::string> contents;
  for (size_t i = 0; i < n; ++i) {
    contents.push_back(std::string(64, static_cast<char>('a' + i)));
    expected += contents[i];
  }
  // Install out of order so every segment past the frontier parks
  // (ForceSpill) into the shared arena.
  for (size_t i = n; i-- > 1;) {
    auto seg = std::make_unique<SpillSink>(/*budget=*/16, &arena);
    ASSERT_TRUE(seg->Append(contents[i]).ok());
    ASSERT_TRUE(commit.Install(i, std::move(seg)).ok());
  }
  EXPECT_EQ(arena.open_files(), 1);
  auto head = std::make_unique<SpillSink>(/*budget=*/16, &arena);
  ASSERT_TRUE(head->Append(contents[0]).ok());
  ASSERT_TRUE(commit.Install(0, std::move(head)).ok());
  EXPECT_TRUE(commit.finished());
  EXPECT_EQ(down.str(), expected);
}

TEST(OrderedCommitSinkTest, ConcurrentInstallsFromAPool) {
  for (int round = 0; round < 20; ++round) {
    const size_t n = 17;
    std::string expected;
    std::vector<std::string> contents;
    for (size_t i = 0; i < n; ++i) {
      contents.push_back("seg" + std::to_string(i) + "|");
      expected += contents.back();
    }
    StringSink down;
    OrderedCommitSink commit(&down, n);
    parallel::ThreadPool pool(5);
    pool.RunAndWait(n, [&](size_t i) {
      commit.Install(i, Segment(contents[i], /*budget=*/8));
    });
    EXPECT_TRUE(commit.finished());
    EXPECT_TRUE(commit.status().ok());
    EXPECT_EQ(down.str(), expected);
  }
}

}  // namespace
}  // namespace smpx
