// Tests for the tokenizing baselines: the SAX projector (TBP substitute)
// must implement the same projection semantics as the prefilter, and the
// SAX parse baseline must count tokens faithfully.

#include <string>

#include <gtest/gtest.h>

#include "baselines/sax_baseline.h"
#include "baselines/sax_projector.h"
#include "common/io.h"
#include "paths/projection_path.h"

namespace smpx::baselines {
namespace {

std::vector<paths::ProjectionPath> P(std::string_view list) {
  auto r = paths::ProjectionPath::ParseList(list);
  EXPECT_TRUE(r.ok());
  return *r;
}

std::string Project(std::string_view paths, std::string_view doc) {
  SaxProjector projector(P(paths));
  StringSink sink;
  Status s = projector.Project(doc, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return sink.str();
}

TEST(SaxProjectorTest, PaperExample2Semantics) {
  EXPECT_EQ(Project("/a/b#", "<a><b>one</b><c><b>shielded</b></c>"
                             "<b>two</b></a>"),
            "<a><b>one</b><b>two</b></a>");
}

TEST(SaxProjectorTest, PaperExample1Document) {
  std::string doc =
      "<site><regions><africa><item><location>US</location>"
      "<description>flat panel</description></item></africa>"
      "<australia><item><description>Palm Zire 71</description></item>"
      "</australia></regions></site>";
  EXPECT_EQ(Project("//australia//description#", doc),
            "<site><australia><description>Palm Zire 71</description>"
            "</australia></site>");
}

TEST(SaxProjectorTest, C3KeepsShieldingTags) {
  // Example 6: both /a/b# and //b# present; the c tags must survive.
  EXPECT_EQ(Project("/a/b# //b#", "<a><c><b>T</b></c></a>"),
            "<a><c><b>T</b></c></a>");
}

TEST(SaxProjectorTest, AttributesFollowFlags) {
  EXPECT_EQ(Project("/a@ /a/b", "<a id=\"1\"><b x=\"2\">t</b></a>"),
            "<a id=\"1\"><b></b></a>");
  EXPECT_EQ(Project("/a /a/b@", "<a id=\"1\"><b x=\"2\">t</b></a>"),
            "<a><b x=\"2\"></b></a>");
}

TEST(SaxProjectorTest, BachelorTags) {
  EXPECT_EQ(Project("/a/b", "<a><b/><c/></a>"), "<a><b/></a>");
  EXPECT_EQ(Project("/a/b#", "<a><b/></a>"), "<a><b/></a>");
}

TEST(SaxProjectorTest, TextOnlyUnderHash) {
  EXPECT_EQ(Project("/a/b", "<a>noise<b>kept?</b></a>"), "<a><b></b></a>");
  EXPECT_EQ(Project("/a/b#", "<a>noise<b>kept!</b></a>"),
            "<a><b>kept!</b></a>");
}

TEST(SaxProjectorTest, StatsAreFilled) {
  SaxProjector projector(P("/a/b"));
  StringSink sink;
  SaxProjectStats stats;
  ASSERT_TRUE(
      projector.Project("<a><b>x</b><c>y</c></a>", &sink, &stats).ok());
  EXPECT_GT(stats.tokens, 0u);
  EXPECT_EQ(stats.elements_kept, 2u);   // a and b
  EXPECT_EQ(stats.elements_dropped, 1u);  // c
  EXPECT_EQ(stats.input_bytes, std::string("<a><b>x</b><c>y</c></a>").size());
  EXPECT_EQ(stats.output_bytes, sink.str().size());
}

TEST(SaxProjectorTest, MalformedInputFails) {
  SaxProjector projector(P("/a"));
  StringSink sink;
  EXPECT_FALSE(projector.Project("<a><b></a>", &sink).ok());
}

TEST(SaxProjectorTest, ModesProduceIdenticalOutput) {
  // The memoized-DFA fast path must be a pure optimization.
  std::string doc =
      "<a><b>one</b><c><b>x</b><b>y</b></c><b>two</b><c><b>z</b></c></a>";
  for (const char* paths : {"/a/b#", "/a/b# //b#", "//c#", "/a@ /a/c/b"}) {
    SaxProjector dfa(P(paths), SaxProjector::Mode::kMemoizedDfa);
    SaxProjector nfa(P(paths), SaxProjector::Mode::kNfaPerNode);
    StringSink out1;
    StringSink out2;
    ASSERT_TRUE(dfa.Project(doc, &out1).ok()) << paths;
    ASSERT_TRUE(nfa.Project(doc, &out2).ok()) << paths;
    EXPECT_EQ(out1.str(), out2.str()) << paths;
  }
}

TEST(SaxParseTest, CountsTokens) {
  auto r = SaxParse("<a x=\"1\"><b>text</b><c/></a>", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->elements, 3u);
  EXPECT_EQ(r->attributes, 1u);
  EXPECT_EQ(r->text_bytes, 4u);
}

TEST(SaxParseTest, Sax2ModeChecksWellFormedness) {
  EXPECT_TRUE(SaxParse("<a><b></a></b>", false).ok())
      << "SAX1-like mode does not match tags";
  EXPECT_FALSE(SaxParse("<a><b></a></b>", true).ok());
}

}  // namespace
}  // namespace smpx::baselines
