// Differential tests for the SIMD structural-classification layer
// (src/simd/): every available dispatch tier must be bit-identical to the
// scalar oracle for every classifier, at every alignment within a 64-byte
// block, for lengths around every boundary the kernels care about, and the
// tail paths must never read past the end of the input (verified with
// guard-page allocations).

#include "simd/simd.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simd/bitmap_plane.h"

namespace smpx::simd {
namespace {

// Deterministic byte soup dense in the structural bytes the prefilter
// classifies, so bitmaps are non-trivial at every offset.
std::vector<unsigned char> MakeCorpus(size_t n, uint32_t seed) {
  static constexpr char kAlphabet[] = "<>\"'-]?ab <<>>x-]'\"?";
  std::mt19937 rng(seed);
  std::vector<unsigned char> buf(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<unsigned char>(
        kAlphabet[rng() % (sizeof(kAlphabet) - 1)]);
  }
  return buf;
}

uint64_t NaiveEq(const unsigned char* p, size_t len, unsigned char c) {
  uint64_t m = 0;
  for (size_t i = 0; i < len && i < 64; ++i) {
    if (p[i] == c) m |= uint64_t{1} << i;
  }
  return m;
}

uint64_t NaiveAny(const unsigned char* p, size_t len, const ByteSet& set) {
  uint64_t m = 0;
  for (size_t i = 0; i < len && i < 64; ++i) {
    for (unsigned j = 0; j < set.n; ++j) {
      if (p[i] == set.chars[j]) m |= uint64_t{1} << i;
    }
  }
  return m;
}

/// RAII restore of the dispatch tier around a test body.
class IsaGuard {
 public:
  IsaGuard() : saved_(ActiveIsa()) {}
  ~IsaGuard() { SetIsa(saved_); }

 private:
  Isa saved_;
};

/// Maps `pages + 1` pages and revokes all access to the last one, returning
/// a writable region whose end abuts an unreadable page. Any kernel or tail
/// helper that reads one byte past the permitted length faults.
class GuardedBuffer {
 public:
  explicit GuardedBuffer(size_t pages = 1) {
    page_ = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    size_ = page_ * pages;
    base_ = static_cast<unsigned char*>(
        mmap(nullptr, size_ + page_, PROT_READ | PROT_WRITE,
             MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
    EXPECT_NE(base_, MAP_FAILED);
    EXPECT_EQ(mprotect(base_ + size_, page_, PROT_NONE), 0);
  }
  ~GuardedBuffer() { munmap(base_, size_ + page_); }

  /// A pointer `len` bytes before the guard page.
  unsigned char* EndMinus(size_t len) { return base_ + size_ - len; }
  size_t size() const { return size_; }

 private:
  unsigned char* base_ = nullptr;
  size_t size_ = 0;
  size_t page_ = 0;
};

TEST(SimdDispatchTest, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
  EXPECT_TRUE(IsaAvailable(Isa::kSwar));
  std::vector<Isa> isas = AvailableIsas();
  ASSERT_GE(isas.size(), 2u);
  EXPECT_EQ(isas[0], Isa::kScalar);
  EXPECT_EQ(isas[1], Isa::kSwar);
}

TEST(SimdDispatchTest, SetIsaInstallsRequestedTierWhenAvailable) {
  IsaGuard guard;
  for (Isa isa : AvailableIsas()) {
    EXPECT_EQ(SetIsa(isa), isa);
    EXPECT_EQ(ActiveIsa(), isa);
  }
}

TEST(SimdDispatchTest, SetIsaFallsBackAtOrBelow) {
  IsaGuard guard;
  // Whatever the host, requesting the top tier must install an available
  // tier at or below it, never something above.
  Isa got = SetIsa(Isa::kNeon);
  EXPECT_TRUE(IsaAvailable(got));
  EXPECT_LE(static_cast<int>(got), static_cast<int>(Isa::kNeon));
  got = SetIsa(Isa::kScalar);
  EXPECT_EQ(got, Isa::kScalar);
}

TEST(SimdDispatchTest, ParseIsaRoundTrips) {
  for (Isa isa : {Isa::kScalar, Isa::kSwar, Isa::kSse2, Isa::kSse42,
                  Isa::kAvx2, Isa::kNeon}) {
    Isa parsed;
    ASSERT_TRUE(ParseIsa(IsaName(isa), &parsed)) << IsaName(isa);
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed;
  EXPECT_FALSE(ParseIsa("avx512", &parsed));
  EXPECT_FALSE(ParseIsa("", &parsed));
}

// Every tier's full-block kernels agree with the per-byte oracle at every
// alignment within a block (the corpus is larger than alignment + 64 + the
// largest pair delta, so all loads are in-bounds).
TEST(SimdKernelTest, FullBlockKernelsMatchOracleAtEveryAlignment) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(64 + 64 + 8, 1);
  static constexpr ByteSet kSet("<>\"'-]?");
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    const Kernels& k = Active();
    for (size_t align = 0; align < 64; ++align) {
      const unsigned char* p = corpus.data() + align;
      for (unsigned char c : {'<', '>', '"', '\'', '-', ']', '?', 'z'}) {
        EXPECT_EQ(k.eq64(p, c), NaiveEq(p, 64, c))
            << IsaName(isa) << " eq64 align=" << align << " c=" << c;
      }
      EXPECT_EQ(k.any64(p, kSet), NaiveAny(p, 64, kSet))
          << IsaName(isa) << " any64 align=" << align;
      for (size_t delta : {1u, 2u, 7u}) {
        uint64_t want = 0;
        for (size_t i = 0; i < 64; ++i) {
          if (p[i] == '<' && p[i + delta] == '>') want |= uint64_t{1} << i;
        }
        EXPECT_EQ(k.pair64(p, delta, '<', '>'), want)
            << IsaName(isa) << " pair64 align=" << align
            << " delta=" << delta;
      }
    }
  }
}

// Tail helpers agree with the oracle for every length 0..130 (covering the
// 0, sub-word, sub-block, exactly-64, and beyond-64 regimes) at mixed
// alignments, on every tier.
TEST(SimdKernelTest, TailHelpersMatchOracleForAllShortLengths) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(256, 2);
  static constexpr ByteSet kSet("[]>\"'");
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    for (size_t len = 0; len <= 130; ++len) {
      for (size_t align : {0u, 1u, 7u, 31u, 63u}) {
        const unsigned char* p = corpus.data() + align;
        EXPECT_EQ(EqMaskTail(p, len, '<'), NaiveEq(p, len, '<'))
            << IsaName(isa) << " len=" << len << " align=" << align;
        EXPECT_EQ(AnyMaskTail(p, len, kSet), NaiveAny(p, len, kSet))
            << IsaName(isa) << " len=" << len << " align=" << align;
        uint64_t want = 0;
        if (len > 2) {
          for (size_t i = 0; i < len - 2 && i < 64; ++i) {
            if (p[i] == '-' && p[i + 2] == '>') want |= uint64_t{1} << i;
          }
        }
        EXPECT_EQ(PairMaskTail(p, len, 2, '-', '>'), want)
            << IsaName(isa) << " len=" << len << " align=" << align;
      }
    }
  }
}

// The tail paths must not read past `len`: run them flush against a
// PROT_NONE page for every length 0..129. A single over-read segfaults.
TEST(SimdKernelTest, TailHelpersNeverReadPastEndGuardPage) {
  IsaGuard guard;
  GuardedBuffer gb;
  static constexpr ByteSet kSet(">\"'");
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    for (size_t len = 0; len <= 129; ++len) {
      unsigned char* p = gb.EndMinus(len);
      for (size_t i = 0; i < len; ++i) {
        p[i] = static_cast<unsigned char>("<x>'"[i % 4]);
      }
      EXPECT_EQ(EqMaskTail(p, len, '<'), NaiveEq(p, len, '<'))
          << IsaName(isa) << " len=" << len;
      EXPECT_EQ(AnyMaskTail(p, len, kSet), NaiveAny(p, len, kSet))
          << IsaName(isa) << " len=" << len;
      (void)PairMaskTail(p, len, 2, '<', '>');
      // The whole-span helpers route their last partial block through the
      // same tail staging; exercise them against the guard too.
      const char* d = reinterpret_cast<const char*>(p);
      (void)FindByte(d, len, 'q');
      (void)FindAny(d, len, kSet);
      (void)FindPattern(d, len, "-->");
      MaskScanner ms(d, len, '<');
      for (size_t q = ms.Next(0); q < len; q = ms.Next(q + 1)) {
      }
    }
  }
}

// FindByte/FindAny/FindPattern agree with straightforward scalar searches
// on random soup, on every tier, across lengths spanning block boundaries.
TEST(SimdFindTest, FindHelpersMatchNaiveSearches) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(4096, 3);
  const char* d = reinterpret_cast<const char*>(corpus.data());
  static constexpr ByteSet kSet("[]>\"'");
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    for (size_t n : {0u, 1u, 5u, 63u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
      // FindByte vs memchr.
      const void* want = std::memchr(d, '<', n);
      size_t got = FindByte(d, n, '<');
      EXPECT_EQ(got, want == nullptr
                         ? n
                         : static_cast<size_t>(
                               static_cast<const char*>(want) - d))
          << IsaName(isa) << " n=" << n;
      // FindAny vs a scalar loop.
      size_t naive = n;
      for (size_t i = 0; i < n; ++i) {
        if (std::memchr("[]>\"'", d[i], 5) != nullptr) {
          naive = i;
          break;
        }
      }
      EXPECT_EQ(FindAny(d, n, kSet), naive) << IsaName(isa) << " n=" << n;
      // FindPattern vs string_view::find for 2- and 3-byte terms.
      for (std::string_view term : {std::string_view("?>"),
                                    std::string_view("-->"),
                                    std::string_view("]]>")}) {
        size_t ref = std::string_view(d, n).find(term);
        if (ref == std::string_view::npos) ref = n;
        EXPECT_EQ(FindPattern(d, n, term), ref)
            << IsaName(isa) << " n=" << n << " term=" << term;
      }
    }
  }
}

// MaskScanner enumerates exactly the memchr hit sequence, including
// re-query patterns (repeat Next at the same position, jumps forward).
TEST(SimdFindTest, MaskScannerMatchesMemchrEnumeration) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(2048, 4);
  const char* d = reinterpret_cast<const char*>(corpus.data());
  const size_t n = corpus.size();
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    MaskScanner ms(d, n, '<');
    size_t pos = 0;
    while (true) {
      const void* hit = std::memchr(d + pos, '<', n - pos);
      size_t want =
          hit == nullptr
              ? n
              : static_cast<size_t>(static_cast<const char*>(hit) - d);
      EXPECT_EQ(ms.Next(pos), want) << IsaName(isa) << " pos=" << pos;
      // Re-query at the same position must be stable.
      EXPECT_EQ(ms.Next(pos), want) << IsaName(isa);
      if (want == n) break;
      // Alternate between stepping one past the hit and jumping ahead, to
      // exercise both the cached-block and fresh-block paths.
      pos = (want % 3 == 0) ? want + 17 : want + 1;
      if (pos > n) break;
    }
    EXPECT_EQ(ms.Next(n), n) << IsaName(isa);
    EXPECT_EQ(ms.Next(n + 100), n) << IsaName(isa);
  }
}

// Fuzz: all tiers produce bitwise-identical masks on random inputs at
// random alignments/lengths, with scalar as the oracle.
TEST(SimdKernelTest, FuzzAllTiersAgainstScalar) {
  IsaGuard guard;
  std::mt19937 rng(99);
  const std::vector<Isa> isas = AvailableIsas();
  for (int round = 0; round < 200; ++round) {
    // 63 (max align) + 7 (max delta) + 130 (max tail len) < 256, so every
    // tail helper's staged read stays inside the corpus.
    const std::vector<unsigned char> corpus =
        MakeCorpus(256, 1000 + static_cast<uint32_t>(round));
    const size_t align = rng() % 64;
    const size_t len = rng() % 130;
    const unsigned char c =
        static_cast<unsigned char>("<>\"'-]?x"[rng() % 8]);
    const size_t delta = 1 + rng() % 7;
    const unsigned char* p = corpus.data() + align;
    static constexpr ByteSet kSet("<>\"'-]?");

    SetIsa(Isa::kScalar);
    const uint64_t ref_full_eq = Active().eq64(p, c);
    const uint64_t ref_full_any = Active().any64(p, kSet);
    const uint64_t ref_full_pair = Active().pair64(p, delta, c, '>');
    const uint64_t ref_tail_eq = EqMaskTail(p, len, c);
    const uint64_t ref_tail_any = AnyMaskTail(p, len, kSet);
    const uint64_t ref_tail_pair = PairMaskTail(p, len, delta, c, '>');

    for (Isa isa : isas) {
      SetIsa(isa);
      EXPECT_EQ(Active().eq64(p, c), ref_full_eq)
          << IsaName(isa) << " round=" << round;
      EXPECT_EQ(Active().any64(p, kSet), ref_full_any)
          << IsaName(isa) << " round=" << round;
      EXPECT_EQ(Active().pair64(p, delta, c, '>'), ref_full_pair)
          << IsaName(isa) << " round=" << round;
      EXPECT_EQ(EqMaskTail(p, len, c), ref_tail_eq)
          << IsaName(isa) << " round=" << round;
      EXPECT_EQ(AnyMaskTail(p, len, kSet), ref_tail_any)
          << IsaName(isa) << " round=" << round;
      EXPECT_EQ(PairMaskTail(p, len, delta, c, '>'), ref_tail_pair)
          << IsaName(isa) << " round=" << round;
    }
  }
}

// --- BitmapPlane -------------------------------------------------------------
// The plane must be bit-identical to the per-call kernel path under every
// tier: same words the masked-tail helpers would produce, same Find*
// results, across alignments, binding ends, append-rebinds, invalidations,
// and lane-eviction pressure. These are the oracles the consumers
// (engine/shard/matchers) rely on for byte-identical output.

/// Lane-word oracle honoring the binding end: bit i = (p[rel+i] == c),
/// zero at and past n.
uint64_t PlaneEqOracle(const unsigned char* p, size_t n, size_t rel,
                       unsigned char c) {
  uint64_t m = 0;
  for (size_t i = 0; i < 64 && rel + i < n; ++i) {
    if (p[rel + i] == c) m |= uint64_t{1} << i;
  }
  return m;
}

uint64_t PlaneAnyOracle(const unsigned char* p, size_t n, size_t rel,
                        const ByteSet& set) {
  uint64_t m = 0;
  for (size_t i = 0; i < 64 && rel + i < n; ++i) {
    for (unsigned j = 0; j < set.n; ++j) {
      if (p[rel + i] == set.chars[j]) m |= uint64_t{1} << i;
    }
  }
  return m;
}

/// Bits whose pair partner sits at or past the binding end are zero (the
/// PairMaskTail convention).
uint64_t PlanePairOracle(const unsigned char* p, size_t n, size_t rel,
                         size_t delta, unsigned char a, unsigned char b) {
  uint64_t m = 0;
  for (size_t i = 0; i < 64 && rel + i + delta < n; ++i) {
    if (p[rel + i] == a && p[rel + i + delta] == b) m |= uint64_t{1} << i;
  }
  return m;
}

TEST(BitmapPlaneTest, EnabledToggleRoundTrips) {
  const bool was = PlaneEnabled();
  SetPlaneEnabled(false);
  EXPECT_FALSE(PlaneEnabled());
  SetPlaneEnabled(true);
  EXPECT_TRUE(PlaneEnabled());
  SetPlaneEnabled(was);
}

// Word extraction matches the oracle on every tier, at every alignment
// within a block, at block boundaries, and across the binding end, with a
// non-zero origin (absolute addressing).
TEST(BitmapPlaneTest, WordsMatchOracleOnEveryTierAtEveryAlignment) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(4096, 11);
  const char* d = reinterpret_cast<const char*>(corpus.data());
  const size_t n = corpus.size();
  const uint64_t origin = 1'000'000;
  static constexpr ByteSet kSet("[]>\"'");
  std::vector<size_t> rels;
  for (size_t r = 0; r <= 65; ++r) rels.push_back(r);
  for (size_t r = 66; r + 130 < n; r += 37) rels.push_back(r);
  for (size_t r = n - 130; r < n; ++r) rels.push_back(r);
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    BitmapPlane plane;
    plane.Bind(d, n, origin);
    EXPECT_EQ(plane.origin(), origin);
    EXPECT_EQ(plane.end(), origin + n);
    for (size_t rel : rels) {
      const uint64_t abs = origin + rel;
      for (unsigned char c : {'<', '>', 'z'}) {
        EXPECT_EQ(plane.EqWord(c, abs),
                  PlaneEqOracle(corpus.data(), n, rel, c))
            << IsaName(isa) << " rel=" << rel << " c=" << c;
      }
      EXPECT_EQ(plane.AnyWord(kSet, abs),
                PlaneAnyOracle(corpus.data(), n, rel, kSet))
          << IsaName(isa) << " rel=" << rel;
      for (size_t delta : {1u, 2u, 7u}) {
        EXPECT_EQ(plane.PairWord('<', '>', delta, abs),
                  PlanePairOracle(corpus.data(), n, rel, delta, '<', '>'))
            << IsaName(isa) << " rel=" << rel << " delta=" << delta;
      }
    }
  }
}

// Plane Find* over arbitrary sub-ranges of the binding returns exactly what
// the per-call helpers return over the same bytes, on every tier.
TEST(BitmapPlaneTest, FindsMatchPerCallHelpersOnEveryTier) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(4096, 12);
  const char* d = reinterpret_cast<const char*>(corpus.data());
  const size_t n = corpus.size();
  const uint64_t origin = 999;
  static constexpr ByteSet kSet("[]>\"'");
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    BitmapPlane plane;
    plane.Bind(d, n, origin);
    for (size_t rel : {0u, 1u, 63u, 64u, 65u, 1000u, 4000u}) {
      for (size_t want_len :
           {0u, 1u, 5u, 63u, 64u, 65u, 127u, 128u, 2000u, 4096u}) {
        const size_t len = want_len < n - rel ? want_len : n - rel;
        const uint64_t abs = origin + rel;
        for (unsigned char c : {'<', 'q'}) {
          EXPECT_EQ(plane.FindByte(abs, len, c),
                    simd::FindByte(d + rel, len, c))
              << IsaName(isa) << " rel=" << rel << " len=" << len;
        }
        EXPECT_EQ(plane.FindAny(abs, len, kSet),
                  simd::FindAny(d + rel, len, kSet))
            << IsaName(isa) << " rel=" << rel << " len=" << len;
        for (std::string_view term : {std::string_view("?>"),
                                      std::string_view("-->"),
                                      std::string_view("]]>")}) {
          EXPECT_EQ(plane.FindPattern(abs, len, term),
                    simd::FindPattern(d + rel, len, term))
              << IsaName(isa) << " rel=" << rel << " len=" << len
              << " term=" << term;
        }
      }
    }
  }
}

// Append-only rebinds (the SlidingWindow refill pattern: same data, origin,
// epoch, larger n) must re-open the partial word at the old end -- bytes
// past the old binding become visible to already-computed lanes.
TEST(BitmapPlaneTest, AppendRebindKeepsLanesAndReopensTailWord) {
  IsaGuard guard;
  std::vector<unsigned char> corpus = MakeCorpus(1024, 13);
  corpus[700] = '#';  // only occurrence, past the first binding end
  const char* d = reinterpret_cast<const char*>(corpus.data());
  const uint64_t origin = 4242;
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    BitmapPlane plane;
    // First binding ends mid-word at 517; a full scan computes (and caps)
    // every lane word against that end.
    plane.Bind(d, 517, origin);
    EXPECT_EQ(plane.FindByte(origin, 517, '#'), 517u) << IsaName(isa);
    EXPECT_EQ(plane.EqWord('<', origin + 512),
              PlaneEqOracle(corpus.data(), 517, 512, '<'))
        << IsaName(isa);
    // Append-rebind to the full buffer: the '#' at 700 and the tail of the
    // word containing 517 must now be visible.
    plane.Bind(d, corpus.size(), origin);
    EXPECT_EQ(plane.FindByte(origin, corpus.size(), '#'), 700u)
        << IsaName(isa);
    for (size_t rel : {448u, 511u, 512u, 516u, 517u, 518u, 576u, 960u}) {
      EXPECT_EQ(plane.EqWord('<', origin + rel),
                PlaneEqOracle(corpus.data(), corpus.size(), rel, '<'))
          << IsaName(isa) << " rel=" << rel;
      EXPECT_EQ(plane.PairWord('-', '>', 2, origin + rel),
                PlanePairOracle(corpus.data(), corpus.size(), rel, 2, '-',
                                '>'))
          << IsaName(isa) << " rel=" << rel;
    }
  }
}

// A pair bit whose partner sat past the old binding end is clamped to 0;
// an append-rebind must re-open it even when the old end was an exact
// word multiple (no partial tail word), because the clamped bits live in
// a *kept whole* word -- the trailing delta bytes before the old end.
TEST(BitmapPlaneTest, AppendRebindReopensPairPartnersPastOldEnd) {
  IsaGuard guard;
  std::vector<unsigned char> corpus = MakeCorpus(512, 77);
  corpus[123] = 'A';
  corpus[133] = 'B';  // delta-10 partner, past the first binding end of 128
  const char* d = reinterpret_cast<const char*>(corpus.data());
  const uint64_t origin = 5000;
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    BitmapPlane plane;
    plane.Bind(d, 128, origin);
    EXPECT_EQ(plane.PairWord('A', 'B', 10, origin + 123),
              PlanePairOracle(corpus.data(), 128, 123, 10, 'A', 'B'))
        << IsaName(isa);
    EXPECT_EQ(plane.PairWord('A', 'B', 10, origin + 123) & 1u, 0u)
        << IsaName(isa);
    plane.Bind(d, corpus.size(), origin);
    EXPECT_EQ(plane.PairWord('A', 'B', 10, origin + 123),
              PlanePairOracle(corpus.data(), corpus.size(), 123, 10, 'A', 'B'))
        << IsaName(isa);
    EXPECT_EQ(plane.PairWord('A', 'B', 10, origin + 123) & 1u, 1u)
        << IsaName(isa);
  }
}

// A changed epoch (SlidingWindow slide/realloc) or changed origin must
// invalidate every lane even when the data pointer is unchanged; stale
// words would desynchronize the engine from the document.
TEST(BitmapPlaneTest, EpochAndOriginChangesInvalidateLanes) {
  IsaGuard guard;
  std::vector<unsigned char> buf = MakeCorpus(512, 14);
  const char* d = reinterpret_cast<const char*>(buf.data());
  BitmapPlane plane;
  plane.Bind(d, buf.size(), /*origin=*/100, /*epoch=*/0);
  const uint64_t before = plane.EqWord('<', 100);
  EXPECT_EQ(before, PlaneEqOracle(buf.data(), buf.size(), 0, '<'));
  // Rewrite the buffer in place -- the epoch bump is what tells the plane.
  const std::vector<unsigned char> other = MakeCorpus(512, 99);
  std::memcpy(buf.data(), other.data(), buf.size());
  plane.Bind(d, buf.size(), 100, /*epoch=*/1);
  EXPECT_EQ(plane.EqWord('<', 100),
            PlaneEqOracle(buf.data(), buf.size(), 0, '<'));
  // Same bytes re-addressed under a shifted origin: every absolute query
  // must resolve through the new mapping.
  plane.Bind(d, buf.size(), 105, /*epoch=*/1);
  EXPECT_EQ(plane.EqWord('<', 105 + 17),
            PlaneEqOracle(buf.data(), buf.size(), 17, '<'));
}

// More distinct byte classes than kMaxLanes: eviction recycles lanes and a
// re-queried evicted class must be refilled correctly.
TEST(BitmapPlaneTest, LaneEvictionPressureStaysCorrect) {
  IsaGuard guard;
  const std::vector<unsigned char> corpus = MakeCorpus(512, 15);
  const char* d = reinterpret_cast<const char*>(corpus.data());
  const size_t n = corpus.size();
  static constexpr ByteSet kSetA("[]>\"'");
  static constexpr ByteSet kSetB("<>-");
  static constexpr char kChars[] = "ab<>\"'-]?x 0123456789";
  BitmapPlane plane;
  plane.Bind(d, n, /*origin=*/0);
  for (int round = 0; round < 2; ++round) {
    for (size_t ci = 0; ci + 1 < sizeof(kChars); ++ci) {
      const unsigned char c = static_cast<unsigned char>(kChars[ci]);
      EXPECT_EQ(plane.EqWord(c, 17), PlaneEqOracle(corpus.data(), n, 17, c))
          << "round=" << round << " c=" << c;
    }
    EXPECT_EQ(plane.AnyWord(kSetA, 33),
              PlaneAnyOracle(corpus.data(), n, 33, kSetA));
    EXPECT_EQ(plane.AnyWord(kSetB, 33),
              PlaneAnyOracle(corpus.data(), n, 33, kSetB));
    EXPECT_EQ(plane.PairWord('<', '>', 1, 5),
              PlanePairOracle(corpus.data(), n, 5, 1, '<', '>'));
    EXPECT_EQ(plane.PairWord('-', '>', 2, 5),
              PlanePairOracle(corpus.data(), n, 5, 2, '-', '>'));
  }
}

// Lane fills (bulk kernels + masked tails + kFillChunk read-ahead) must
// never read past the binding end: bind flush against a PROT_NONE page for
// every tail length and run every query kind on every tier.
TEST(BitmapPlaneTest, NeverReadsPastBindingEndGuardPage) {
  IsaGuard guard;
  GuardedBuffer gb;
  static constexpr ByteSet kSet(">\"'");
  for (Isa isa : AvailableIsas()) {
    ASSERT_EQ(SetIsa(isa), isa);
    for (size_t len = 0; len <= 129; ++len) {
      unsigned char* p = gb.EndMinus(len);
      for (size_t i = 0; i < len; ++i) {
        p[i] = static_cast<unsigned char>("<x>'"[i % 4]);
      }
      const char* d = reinterpret_cast<const char*>(p);
      BitmapPlane plane;
      plane.Bind(d, len, /*origin=*/777);
      EXPECT_EQ(plane.FindByte(777, len, '<'), simd::FindByte(d, len, '<'))
          << IsaName(isa) << " len=" << len;
      EXPECT_EQ(plane.FindAny(777, len, kSet), simd::FindAny(d, len, kSet))
          << IsaName(isa) << " len=" << len;
      EXPECT_EQ(plane.FindPattern(777, len, "-->"),
                simd::FindPattern(d, len, "-->"))
          << IsaName(isa) << " len=" << len;
      for (size_t rel = 0; rel < len; rel += 61) {
        EXPECT_EQ(plane.EqWord('<', 777 + rel),
                  PlaneEqOracle(p, len, rel, '<'))
            << IsaName(isa) << " len=" << len << " rel=" << rel;
        EXPECT_EQ(plane.PairWord('<', '>', 2, 777 + rel),
                  PlanePairOracle(p, len, rel, 2, '<', '>'))
            << IsaName(isa) << " len=" << len << " rel=" << rel;
      }
    }
  }
}

// An unrecognized SMPX_FORCE_ISA value must abort loudly at dispatch init
// instead of silently running a default tier.
TEST(SimdDispatchDeathTest, UnrecognizedForceIsaAbortsLoudly) {
  EXPECT_DEATH(
      {
        setenv("SMPX_FORCE_ISA", "avx9000", 1);
        detail::Init();
      },
      "unrecognized SMPX_FORCE_ISA");
}

}  // namespace
}  // namespace smpx::simd
