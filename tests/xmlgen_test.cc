// Tests for the dataset generators: documents must be well-formed, valid
// w.r.t. their DTDs (checked via the DTD-automaton accepting the token
// stream), deterministic in the seed, and roughly sized to target.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "dtd/dtd_automaton.h"
#include "xml/tokenizer.h"
#include "xmlgen/dtd_sampler.h"
#include "xmlgen/medline.h"
#include "xmlgen/protein.h"
#include "xmlgen/text_gen.h"
#include "xmlgen/xmark.h"

namespace smpx::xmlgen {
namespace {

/// Validates `doc` against `dtd` by running its tag tokens through the
/// DTD-automaton (a full validity check, not just well-formedness).
::testing::AssertionResult ValidWrt(const dtd::Dtd& dtd,
                                    std::string_view doc) {
  auto aut = dtd::DtdAutomaton::Build(dtd);
  if (!aut.ok()) {
    return ::testing::AssertionFailure()
           << "automaton: " << aut.status().ToString();
  }
  auto tokens = xml::TokenizeAll(doc);
  if (!tokens.ok()) {
    return ::testing::AssertionFailure()
           << "tokenize: " << tokens.status().ToString();
  }
  // Set-of-states simulation: content models need not be 1-unambiguous, so
  // the Glushkov automaton may be nondeterministic.
  std::set<int> states = {0};
  for (const xml::Token& t : *tokens) {
    if (!t.IsTag()) continue;
    std::vector<std::pair<std::string, bool>> events;
    if (t.type == xml::TokenType::kEmptyTag) {
      events = {{std::string(t.name), false}, {std::string(t.name), true}};
    } else {
      events = {{std::string(t.name), t.type == xml::TokenType::kEndTag}};
    }
    for (const auto& [name, closing] : events) {
      int token = aut->FindToken(name, closing);
      if (token < 0) {
        return ::testing::AssertionFailure()
               << "unknown token " << (closing ? "</" : "<") << name << ">";
      }
      std::set<int> next;
      for (int s : states) {
        for (const auto& tr : aut->Out(s)) {
          if (tr.token == token) next.insert(tr.to);
        }
      }
      if (next.empty()) {
        return ::testing::AssertionFailure()
               << "no transition on " << (closing ? "</" : "<") << name
               << "> at offset " << t.begin;
      }
      states = std::move(next);
    }
  }
  if (states.count(aut->final_state()) == 0) {
    return ::testing::AssertionFailure() << "did not reach the final state";
  }
  return ::testing::AssertionSuccess();
}

TEST(XmarkGenTest, WellFormedAndValid) {
  XmarkOptions opts;
  opts.target_bytes = 200 << 10;
  std::string doc = GenerateXmark(opts);
  EXPECT_TRUE(xml::CheckWellFormed(doc).ok());
  EXPECT_TRUE(ValidWrt(XmarkDtd(), doc));
}

TEST(XmarkGenTest, SizeTracksTarget) {
  for (uint64_t target : {256ull << 10, 1ull << 20, 4ull << 20}) {
    XmarkOptions opts;
    opts.target_bytes = target;
    std::string doc = GenerateXmark(opts);
    EXPECT_GT(doc.size(), target / 4) << target;
    EXPECT_LT(doc.size(), target * 3) << target;
  }
}

TEST(XmarkGenTest, DeterministicInSeed) {
  XmarkOptions opts;
  opts.target_bytes = 64 << 10;
  std::string a = GenerateXmark(opts);
  std::string b = GenerateXmark(opts);
  EXPECT_EQ(a, b);
  opts.seed += 1;
  EXPECT_NE(GenerateXmark(opts), a);
}

TEST(XmarkGenTest, ContainsExpectedStructure) {
  XmarkOptions opts;
  opts.target_bytes = 512 << 10;
  std::string doc = GenerateXmark(opts);
  EXPECT_NE(doc.find("<australia>"), std::string::npos);
  EXPECT_NE(doc.find("<open_auction id="), std::string::npos);
  EXPECT_NE(doc.find("<closed_auctions>"), std::string::npos);
  EXPECT_NE(doc.find("<profile income="), std::string::npos);
  EXPECT_NE(doc.find("<incategory category="), std::string::npos);
}

TEST(MedlineGenTest, WellFormedAndValid) {
  MedlineOptions opts;
  opts.target_bytes = 200 << 10;
  std::string doc = GenerateMedline(opts);
  EXPECT_TRUE(xml::CheckWellFormed(doc).ok());
  EXPECT_TRUE(ValidWrt(MedlineDtd(), doc));
}

TEST(MedlineGenTest, CollectionTitleDeclaredButAbsent) {
  dtd::Dtd dtd = MedlineDtd();
  EXPECT_NE(dtd.Find("CollectionTitle"), nullptr);
  MedlineOptions opts;
  opts.target_bytes = 1 << 20;
  std::string doc = GenerateMedline(opts);
  EXPECT_EQ(doc.find("<CollectionTitle>"), std::string::npos)
      << "query M1 must project to zero bytes";
}

TEST(MedlineGenTest, PredicateTargetsPresent) {
  MedlineOptions opts;
  opts.target_bytes = 4 << 20;
  std::string doc = GenerateMedline(opts);
  EXPECT_NE(doc.find(">PDB<"), std::string::npos) << "M2 target";
  EXPECT_NE(doc.find("<AbstractText>"), std::string::npos);
  EXPECT_NE(doc.find("NASA"), std::string::npos) << "M4 target";
  EXPECT_NE(doc.find("Sterilization"), std::string::npos) << "M5 target";
}

TEST(MedlineGenTest, AbstractPrefixPairExists) {
  // The DTD must contain both Abstract and AbstractText (the paper's
  // prefix-tagname case).
  dtd::Dtd dtd = MedlineDtd();
  EXPECT_NE(dtd.Find("Abstract"), nullptr);
  EXPECT_NE(dtd.Find("AbstractText"), nullptr);
}

TEST(ProteinGenTest, WellFormedValidAndTextHeavy) {
  ProteinOptions opts;
  opts.target_bytes = 200 << 10;
  std::string doc = GenerateProtein(opts);
  EXPECT_TRUE(xml::CheckWellFormed(doc).ok());
  EXPECT_TRUE(ValidWrt(ProteinDtd(), doc));
  EXPECT_NE(doc.find("<sequence>"), std::string::npos);
}

TEST(RandomDtdTest, AlwaysNonRecursiveAndValid) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    dtd::Dtd dtd = RandomDtd(&rng);
    EXPECT_FALSE(dtd.IsRecursive());
    EXPECT_TRUE(dtd.Validate().ok()) << dtd.ToString();
    auto aut = dtd::DtdAutomaton::Build(dtd);
    EXPECT_TRUE(aut.ok()) << aut.status().ToString() << "\n" << dtd.ToString();
  }
}

TEST(RandomDocumentTest, ValidWrtItsDtd) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    dtd::Dtd dtd = RandomDtd(&rng);
    std::string doc = RandomDocument(dtd, &rng);
    EXPECT_TRUE(xml::CheckWellFormed(doc).ok()) << doc;
    EXPECT_TRUE(ValidWrt(dtd, doc)) << dtd.ToString() << "\n" << doc;
  }
}

TEST(RandomPathsTest, ParseRoundTrip) {
  Rng rng(13);
  dtd::Dtd dtd = RandomDtd(&rng);
  for (int round = 0; round < 20; ++round) {
    for (const paths::ProjectionPath& p : RandomPaths(dtd, &rng)) {
      auto again = paths::ProjectionPath::Parse(p.ToString());
      ASSERT_TRUE(again.ok()) << p.ToString();
      EXPECT_EQ(again->ToString(), p.ToString());
    }
  }
}

TEST(TextGenTest, Helpers) {
  Rng rng(3);
  std::string words;
  AppendWords(&rng, 5, &words);
  EXPECT_EQ(std::count(words.begin(), words.end(), ' '), 4);
  EXPECT_EQ(Date(&rng).size(), 10u);
  EXPECT_EQ(Time(&rng).size(), 8u);
  for (int i = 0; i < 100; ++i) {
    int64_t v = Uniform(&rng, 3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace smpx::xmlgen
