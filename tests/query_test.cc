// Tests for the XPath subset, the memory-budgeted engine (QizX substitute),
// the record-streaming engine (SPEX substitute), and the top-level
// equality / projection-safety oracle.

#include <string>

#include <gtest/gtest.h>

#include "common/io.h"
#include "query/equivalence.h"
#include "query/mem_engine.h"
#include "query/stream_engine.h"
#include "query/xpath.h"
#include "xml/dom.h"

namespace smpx::query {
namespace {

constexpr char kDoc[] =
    "<site><people>"
    "<person id=\"p0\"><name>Ada</name><age>36</age></person>"
    "<person id=\"p1\"><name>Bob</name></person>"
    "</people><regions><asia><item id=\"i0\"><name>lamp</name>"
    "<description>old <bold>brass</bold> lamp</description></item></asia>"
    "</regions></site>";

std::vector<std::string> Names(const xml::Document& doc,
                               const std::vector<xml::NodeId>& ids) {
  std::vector<std::string> out;
  for (xml::NodeId id : ids) {
    const xml::DomNode& n = doc.node(id);
    out.push_back(n.kind == xml::DomNode::Kind::kText ? "#text" : n.name);
  }
  return out;
}

std::vector<xml::NodeId> Eval(std::string_view q, const xml::Document& doc) {
  auto p = XPath::Parse(q);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return Evaluate(*p, doc);
}

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = xml::ParseDocument(kDoc);
    ASSERT_TRUE(d.ok());
    doc_ = std::move(*d);
  }
  xml::Document doc_;
};

TEST_F(XPathTest, ChildPaths) {
  EXPECT_EQ(Eval("/site/people/person", doc_).size(), 2u);
  EXPECT_EQ(Eval("/site/people", doc_).size(), 1u);
  EXPECT_EQ(Eval("/wrong/people", doc_).size(), 0u);
  EXPECT_EQ(Eval("/site", doc_).size(), 1u);
}

TEST_F(XPathTest, DescendantPaths) {
  EXPECT_EQ(Eval("//name", doc_).size(), 3u);
  EXPECT_EQ(Eval("//person/name", doc_).size(), 2u);
  EXPECT_EQ(Eval("/site//item//bold", doc_).size(), 1u);
  EXPECT_EQ(Eval("//site", doc_).size(), 1u) << "root is a descendant-or-self";
}

TEST_F(XPathTest, Wildcards) {
  EXPECT_EQ(Eval("/site/*", doc_).size(), 2u);
  EXPECT_EQ(Eval("/*", doc_).size(), 1u);
  EXPECT_EQ(Eval("/site/people/person/*", doc_).size(), 3u);
}

TEST_F(XPathTest, TextNodes) {
  auto r = Eval("/site/people/person/name/text()", doc_);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(doc_.node(r[0]).text, "Ada");
  EXPECT_EQ(doc_.node(r[1]).text, "Bob");
}

TEST_F(XPathTest, AttributeSelection) {
  // '@id' selects owner elements having the attribute.
  EXPECT_EQ(Names(doc_, Eval("/site/people/person/@id", doc_)),
            (std::vector<std::string>{"person", "person"}));
  EXPECT_EQ(Eval("//item/@id", doc_).size(), 1u);
  EXPECT_EQ(Eval("//item/@missing", doc_).size(), 0u);
}

TEST_F(XPathTest, ExistencePredicates) {
  EXPECT_EQ(Eval("/site/people/person[age]", doc_).size(), 1u);
  EXPECT_EQ(Eval("/site/people/person[@id]", doc_).size(), 2u);
  EXPECT_EQ(Eval("/site/people/person[not(age)]", doc_).size(), 1u);
}

TEST_F(XPathTest, ValuePredicates) {
  EXPECT_EQ(Eval("/site/people/person[name = 'Ada']", doc_).size(), 1u);
  EXPECT_EQ(Eval("/site/people/person[name = 'Eve']", doc_).size(), 0u);
  EXPECT_EQ(Eval("/site/people/person[@id = 'p1']", doc_).size(), 1u);
  EXPECT_EQ(Eval("//item[contains(description, 'brass')]", doc_).size(), 1u);
  EXPECT_EQ(Eval("//item[contains(description, 'copper')]", doc_).size(), 0u);
  EXPECT_EQ(Eval("//person[name/text() = 'Bob']", doc_).size(), 1u);
}

TEST_F(XPathTest, DocumentOrderAndDedup) {
  auto r = Eval("//person", doc_);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_LT(r[0], r[1]);
}

TEST_F(XPathTest, ParserRejectsMalformed) {
  EXPECT_FALSE(XPath::Parse("").ok());
  EXPECT_FALSE(XPath::Parse("site/name").ok());  // relative at top level
  EXPECT_FALSE(XPath::Parse("/a[").ok());
  EXPECT_FALSE(XPath::Parse("/a[b=]").ok());
  EXPECT_FALSE(XPath::Parse("/a/position()").ok());
}

TEST(MemEngineTest, EvaluatesAndSerializes) {
  auto r = EvaluateInMemory("/site/people/person/name", kDoc);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result_count, 2u);
  EXPECT_EQ(r->output, "<name>Ada</name><name>Bob</name>");
}

TEST(MemEngineTest, BudgetExhaustionFails) {
  MemEngineOptions opts;
  opts.memory_budget = 64;
  auto r = EvaluateInMemory("/site//name", kDoc, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(StreamEngineTest, MatchesMemEngineOnRecords) {
  for (const char* q :
       {"/site/people/person/name", "//name", "/site/regions//item",
        "/site/people/person[name = 'Ada']/age"}) {
    auto mem = EvaluateInMemory(q, kDoc);
    ASSERT_TRUE(mem.ok()) << q;
    StringSink sink;
    StreamStats stats;
    ASSERT_TRUE(EvaluateStreaming(q, kDoc, &sink, &stats).ok()) << q;
    EXPECT_EQ(sink.str(), mem->output) << q;
    EXPECT_EQ(stats.records, 2u) << "two children of <site>";
  }
}

TEST(StreamEngineTest, MemoryBoundedByRecord) {
  // 50 records; peak record footprint must be far below total input.
  std::string doc = "<root>";
  for (int i = 0; i < 50; ++i) {
    doc += "<rec><val>" + std::to_string(i) + "</val>" +
           std::string(200, 'x') + "</rec>";
  }
  doc += "</root>";
  StringSink sink;
  StreamStats stats;
  ASSERT_TRUE(EvaluateStreaming("/root/rec/val", doc, &sink, &stats).ok());
  EXPECT_EQ(stats.records, 50u);
  EXPECT_LT(stats.peak_record_bytes, doc.size() / 10);
}

TEST(StreamEngineTest, EmptyRootAndErrors) {
  StringSink sink;
  EXPECT_TRUE(EvaluateStreaming("/a/b", "<a/>", &sink).ok());
  EXPECT_TRUE(sink.str().empty());
  EXPECT_FALSE(EvaluateStreaming("/a/b", "<a><b>", &sink).ok());
  EXPECT_FALSE(EvaluateStreaming("/a/b", "no xml", &sink).ok());
}

// --- Definition 1 / 2 oracle ----------------------------------------------

paths::ProjectionPath PP(std::string_view s) {
  auto r = paths::ProjectionPath::Parse(s);
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(TopLevelEqualTest, Definition1Examples) {
  // Example 5: [<a>b</a>, s], [<a>c</a>, s], [<a></a>, s] pairwise equal.
  auto doc1 = xml::ParseDocument("<a>b</a>");
  auto doc2 = xml::ParseDocument("<a>c</a>");
  auto doc3 = xml::ParseDocument("<a></a>");
  ASSERT_TRUE(doc1.ok() && doc2.ok() && doc3.ok());
  auto items1 = EvaluateForEquality(PP("/a"), *doc1);
  auto items2 = EvaluateForEquality(PP("/a"), *doc2);
  auto items3 = EvaluateForEquality(PP("/a"), *doc3);
  EXPECT_TRUE(TopLevelEqual(items1, items2));
  EXPECT_TRUE(TopLevelEqual(items1, items3));
  EXPECT_TRUE(TopLevelEqual(items2, items3));
}

TEST(TopLevelEqualTest, DiffersOnLengthLabelAndText) {
  auto doc1 = xml::ParseDocument("<a><b>t</b><b>t</b></a>");
  auto doc2 = xml::ParseDocument("<a><b>t</b></a>");
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  EXPECT_FALSE(TopLevelEqual(EvaluateForEquality(PP("/a/b"), *doc1),
                             EvaluateForEquality(PP("/a/b"), *doc2)));
  // '#' makes text differences visible.
  auto doc3 = xml::ParseDocument("<a><b>t</b></a>");
  auto doc4 = xml::ParseDocument("<a><b>u</b></a>");
  ASSERT_TRUE(doc3.ok() && doc4.ok());
  EXPECT_TRUE(TopLevelEqual(EvaluateForEquality(PP("/a/b"), *doc3),
                            EvaluateForEquality(PP("/a/b"), *doc4)));
  EXPECT_FALSE(TopLevelEqual(EvaluateForEquality(PP("/a/b#"), *doc3),
                             EvaluateForEquality(PP("/a/b#"), *doc4)));
}

TEST(ProjectionSafetyTest, DetectsSafeAndUnsafeProjections) {
  std::string original = "<a><c><b>T</b></c><d>x</d></a>";
  // Keeping c and b: safe for {/a, //b#}.
  auto r1 = CheckProjectionSafety(original, "<a><c><b>T</b></c></a>",
                                  {PP("/a"), PP("//b#")});
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->safe) << r1->first_violation;
  // Dropping c while keeping b changes /a/c/b matches: unsafe for /a/c/b.
  auto r2 = CheckProjectionSafety(original, "<a><b>T</b></a>",
                                  {PP("/a/c/b")});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->safe);
  // Dropping b's text: unsafe under '#', safe without.
  auto r3 = CheckProjectionSafety(original, "<a><c><b/></c></a>",
                                  {PP("//b#")});
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3->safe);
  auto r4 = CheckProjectionSafety(original, "<a><c><b/></c></a>",
                                  {PP("//b")});
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4->safe);
}

}  // namespace
}  // namespace smpx::query
