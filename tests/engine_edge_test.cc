// Edge-case and robustness tests for the runtime engine beyond the happy
// paths of core_test: markup oddities, file-based streaming, deep nesting,
// truncation fuzzing, and cross-API property checks.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/prefilter.h"
#include "paths/relevance.h"
#include "paths/xquery_extract.h"
#include "query/equivalence.h"
#include "xml/tokenizer.h"
#include "xmlgen/dtd_sampler.h"
#include "xmlgen/xmark.h"

namespace smpx {
namespace {

constexpr char kPaperDtd[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";

core::Prefilter Compile(std::string_view dtd_text, std::string_view paths) {
  auto dtd = dtd::Dtd::Parse(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto parsed = paths::ProjectionPath::ParseList(paths);
  EXPECT_TRUE(parsed.ok());
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*parsed));
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

TEST(EngineEdgeTest, CommentsInsideCopiedRegionsPassThrough) {
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");
  auto out = pf.RunOnBuffer("<a><b>x<!-- keep me -->y</b></a>");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<a><b>x<!-- keep me -->y</b></a>");
}

TEST(EngineEdgeTest, EntitiesInCopiedTextPassThroughVerbatim) {
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");
  auto out = pf.RunOnBuffer("<a><b>x &amp; y &lt; z</b></a>");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<a><b>x &amp; y &lt; z</b></a>");
}

TEST(EngineEdgeTest, GtInsideAttributeValues) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>"
      " <!ATTLIST b note CDATA #IMPLIED> ]>";
  core::Prefilter pf = Compile(dtd, "/a/b#@");
  auto out = pf.RunOnBuffer("<a><b note='x>y'>t</b></a>");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<a><b note='x>y'>t</b></a>")
      << "the tag-end scan must respect quoted values";
}

TEST(EngineEdgeTest, WhitespaceInClosingTags) {
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");
  auto out = pf.RunOnBuffer("<a><b >x</b ></a >");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<a><b >x</b ></a>")
      << "copied regions keep raw bytes; reconstructed tags are canonical";
}

TEST(EngineEdgeTest, SingleCharacterTagNames) {
  core::Prefilter pf = Compile(kPaperDtd, "/a/b");
  auto out = pf.RunOnBuffer("<a><b></b><c><b></b></c></a>");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<a><b></b></a>");
}

TEST(EngineEdgeTest, DeeplyNestedDtdChain) {
  // e0 > e1 > ... > e29, project the innermost.
  std::string dtd = "<!DOCTYPE e0 [";
  std::string doc;
  std::string close;
  std::string path = "/";
  for (int i = 0; i < 30; ++i) {
    std::string name = "e" + std::to_string(i);
    if (i < 29) {
      dtd += "<!ELEMENT " + name + " (e" + std::to_string(i + 1) + ")>";
    } else {
      dtd += "<!ELEMENT " + name + " (#PCDATA)>";
    }
    doc += "<" + name + ">";
    close = "</" + name + ">" + close;
    path += (i ? "/" : "") + name;
  }
  dtd += "]>";
  doc += "payload" + close;
  core::Prefilter pf = Compile(dtd, path + "#");
  auto out = pf.RunOnBuffer(doc);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, doc) << "whole chain is relevant (prefix paths)";
}

TEST(EngineEdgeTest, FileBasedStreamingRun) {
  std::string in_path = testing::TempDir() + "/smpx_edge_in.xml";
  std::string doc = "<a><b>file payload</b><c><b>no</b></c></a>";
  ASSERT_TRUE(WriteStringToFile(in_path, doc).ok());
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");

  auto in = FileInputStream::Open(in_path);
  ASSERT_TRUE(in.ok());
  StringSink out;
  ASSERT_TRUE(pf.Run(in->get(), &out).ok());
  EXPECT_EQ(out.str(), "<a><b>file payload</b></a>");
  std::remove(in_path.c_str());
}

TEST(EngineEdgeTest, TruncationFuzzNeverCrashes) {
  // Every prefix of a valid document must either project fine (if the
  // relevant part survived) or fail cleanly with ParseError.
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc = "<a><b>one</b><c><b>x</b><b>y</b></c><b>two</b></a>";
  for (size_t cut = 0; cut <= doc.size(); ++cut) {
    auto out = pf.RunOnBuffer(doc.substr(0, cut));
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kParseError) << cut;
    }
  }
}

TEST(EngineEdgeTest, GarbageFuzzNeverCrashes) {
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");
  xmlgen::Rng rng(99);
  std::string doc = "<a><b>one</b><c><b>x</b></c></a>";
  for (int round = 0; round < 300; ++round) {
    std::string mutated = doc;
    size_t pos = static_cast<size_t>(xmlgen::Uniform(
        &rng, 0, static_cast<int64_t>(doc.size()) - 1));
    mutated[pos] = static_cast<char>(xmlgen::Uniform(&rng, 32, 126));
    auto out = pf.RunOnBuffer(mutated);  // must not crash or hang
    (void)out;
  }
}

TEST(EngineEdgeTest, RunIsReusableAndDeterministic) {
  core::Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc = "<a><b>v</b></a>";
  auto a = pf.RunOnBuffer(doc);
  auto b = pf.RunOnBuffer(doc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // And the same compiled prefilter works on a different document.
  auto c = pf.RunOnBuffer("<a><c><b>skip</b></c></a>");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, "<a></a>");
}

// --- cross-API property tests ----------------------------------------------

TEST(RelevancePropertyTest, IncrementalMatchesBatchAnalyze) {
  xmlgen::Rng rng(31);
  for (int round = 0; round < 30; ++round) {
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::vector<paths::ProjectionPath> ps = xmlgen::RandomPaths(dtd, &rng);
    std::vector<std::string> alphabet;
    for (const auto& d : dtd.elements()) alphabet.push_back(d.name);
    paths::RelevanceAnalyzer analyzer(ps, alphabet);
    paths::IncrementalRelevance inc(&analyzer);

    // Walk a random document, comparing verdicts at every element.
    std::string doc = xmlgen::RandomDocument(dtd, &rng);
    auto tokens = xml::TokenizeAll(doc);
    ASSERT_TRUE(tokens.ok());
    std::vector<std::string> branch;
    for (const xml::Token& t : *tokens) {
      if (t.type == xml::TokenType::kStartTag ||
          t.type == xml::TokenType::kEmptyTag) {
        branch.emplace_back(t.name);
        inc.Push(t.name);
        paths::BranchRelevance batch = analyzer.Analyze(branch);
        paths::BranchRelevance fast = inc.Current();
        ASSERT_EQ(batch.relevant(), fast.relevant()) << doc;
        ASSERT_EQ(batch.leaf_hash, fast.leaf_hash) << doc;
        ASSERT_EQ(batch.leaf_attrs, fast.leaf_attrs) << doc;
        ASSERT_EQ(analyzer.TextRelevant(branch), inc.TextRelevantHere());
        if (t.type == xml::TokenType::kEmptyTag) {
          branch.pop_back();
          inc.Pop();
        }
      } else if (t.type == xml::TokenType::kEndTag) {
        branch.pop_back();
        inc.Pop();
      }
    }
  }
}

TEST(EnginePropertyTest, WindowSizeNeverChangesOutput) {
  xmlgen::Rng rng(47);
  for (int round = 0; round < 15; ++round) {
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::vector<paths::ProjectionPath> ps = xmlgen::RandomPaths(dtd, &rng);
    auto pf = core::Prefilter::Compile(dtd, ps);
    ASSERT_TRUE(pf.ok());
    std::string doc = xmlgen::RandomDocument(dtd, &rng);
    std::string reference;
    for (size_t window : {64u, 256u, 4096u, 1u << 20}) {
      core::EngineOptions opts;
      opts.window_capacity = window;
      auto out = pf->RunOnBuffer(doc, nullptr, opts);
      ASSERT_TRUE(out.ok()) << out.status().ToString() << " window "
                            << window << "\n" << dtd.ToString() << "\n"
                            << doc;
      if (reference.empty()) {
        reference = *out;
      } else {
        ASSERT_EQ(*out, reference) << "window " << window;
      }
    }
  }
}

TEST(XQueryEndToEndTest, ExtractCompileRun) {
  // Full pipeline: XQuery text -> projection paths -> prefilter -> output,
  // then verify the query result is preserved (projection safety).
  const char* query =
      "for $i in /site/regions/australia/item "
      "return <r>{$i/name/text()}</r>";
  auto extracted = paths::ExtractProjectionPaths(query);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();

  xmlgen::XmarkOptions gen;
  gen.target_bytes = 256 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);

  auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(), *extracted);
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  auto out = pf->RunOnBuffer(doc);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->size(), doc.size() / 4) << "projection should shrink a lot";

  auto report = query::CheckProjectionSafety(doc, *out, pf->paths());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe) << report->first_violation;
}

}  // namespace
}  // namespace smpx
