// Tests for the DTD substrate: content-model parsing, DTD parsing,
// recursion detection, Glushkov construction, the document-level
// DTD-automaton (checked against the paper's Fig. 5 / Examples 7-9), and
// minimal serialization lengths (Example 1's 25-character jump).

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "dtd/content_model.h"
#include "dtd/dtd.h"
#include "dtd/dtd_automaton.h"
#include "dtd/glushkov.h"
#include "dtd/min_serial.h"

namespace smpx::dtd {
namespace {

// The paper's running example (Example 2):
//   <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)>
constexpr char kPaperDtd[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";

// The XMark excerpt from Fig. 1 (site/regions/africa..australia/item).
constexpr char kXmarkExcerpt[] = R"(<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location,name,payment,description,shipping,incategory+)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>)";

Dtd MustParse(std::string_view text, std::string root = "") {
  auto r = Dtd::Parse(text, std::move(root));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : Dtd();
}

TEST(ContentModelTest, ParsesKeywordForms) {
  EXPECT_EQ(ParseContentModel("EMPTY")->kind, ContentModel::Kind::kEmpty);
  EXPECT_EQ(ParseContentModel("ANY")->kind, ContentModel::Kind::kAny);
  EXPECT_EQ(ParseContentModel("(#PCDATA)")->kind,
            ContentModel::Kind::kPcdata);
  auto mixed = ParseContentModel("(#PCDATA | em | bold)*");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->kind, ContentModel::Kind::kMixed);
  EXPECT_EQ(mixed->mixed_names.size(), 2u);
}

TEST(ContentModelTest, ParsesRegexForms) {
  auto m = ParseContentModel("(location, name?, (b | c)*, incategory+)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->kind, ContentModel::Kind::kRegex);
  EXPECT_EQ(m->expr.op, ContentExpr::Op::kSeq);
  ASSERT_EQ(m->expr.kids.size(), 4u);
  EXPECT_EQ(m->expr.kids[0].name, "location");
  EXPECT_EQ(m->expr.kids[1].op, ContentExpr::Op::kOpt);
  EXPECT_EQ(m->expr.kids[2].op, ContentExpr::Op::kStar);
  EXPECT_EQ(m->expr.kids[2].kids[0].op, ContentExpr::Op::kChoice);
  EXPECT_EQ(m->expr.kids[3].op, ContentExpr::Op::kPlus);
}

TEST(ContentModelTest, Nullability) {
  EXPECT_TRUE(ParseContentModel("EMPTY")->Nullable());
  EXPECT_TRUE(ParseContentModel("(#PCDATA)")->Nullable());
  EXPECT_TRUE(ParseContentModel("(a*)")->Nullable());
  EXPECT_TRUE(ParseContentModel("(a?, b*)")->Nullable());
  EXPECT_FALSE(ParseContentModel("(a, b?)")->Nullable());
  EXPECT_FALSE(ParseContentModel("(a+)")->Nullable());
  EXPECT_TRUE(ParseContentModel("(a | b*)")->Nullable());
}

TEST(ContentModelTest, RejectsMalformed) {
  EXPECT_FALSE(ParseContentModel("(a, b | c)").ok());
  EXPECT_FALSE(ParseContentModel("(a,,b)").ok());
  EXPECT_FALSE(ParseContentModel("(a").ok());
  EXPECT_FALSE(ParseContentModel("a)").ok());
  EXPECT_FALSE(ParseContentModel("(PCDATA #)").ok());
  EXPECT_FALSE(ParseContentModel("(#PCDATA | a)").ok());
}

TEST(ContentModelTest, ToStringRoundTrips) {
  for (const char* text :
       {"EMPTY", "(#PCDATA)", "(a,b?,c*)", "((a|b)+,c)", "(#PCDATA|em)*"}) {
    auto m = ParseContentModel(text);
    ASSERT_TRUE(m.ok()) << text;
    auto again = ParseContentModel(m->ToString());
    ASSERT_TRUE(again.ok()) << m->ToString();
    EXPECT_EQ(m->ToString(), again->ToString());
  }
}

TEST(DtdTest, ParsesPaperDtd) {
  Dtd dtd = MustParse(kPaperDtd);
  EXPECT_EQ(dtd.root(), "a");
  ASSERT_NE(dtd.Find("a"), nullptr);
  ASSERT_NE(dtd.Find("c"), nullptr);
  EXPECT_EQ(dtd.Find("c")->model.ToString(), "(b,b?)");
  EXPECT_TRUE(dtd.Validate().ok());
  EXPECT_FALSE(dtd.IsRecursive());
}

TEST(DtdTest, ParsesAttlists) {
  Dtd dtd = MustParse(kXmarkExcerpt);
  const ElementDecl* inc = dtd.Find("incategory");
  ASSERT_NE(inc, nullptr);
  ASSERT_EQ(inc->attrs.size(), 1u);
  EXPECT_EQ(inc->attrs[0].name, "category");
  EXPECT_TRUE(inc->attrs[0].required());
  EXPECT_EQ(inc->RequiredAttrChars(), std::string(" category=\"\"").size());
}

TEST(DtdTest, AttlistVariants) {
  Dtd dtd = MustParse(
      "<!ELEMENT e EMPTY>"
      "<!ATTLIST e a CDATA #REQUIRED b (x|y) \"x\" c NMTOKEN #IMPLIED"
      " d CDATA #FIXED \"v\">",
      "e");
  const ElementDecl* e = dtd.Find("e");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->attrs.size(), 4u);
  EXPECT_TRUE(e->attrs[0].required());
  EXPECT_EQ(e->attrs[1].def, AttributeDecl::Default::kDefaulted);
  EXPECT_EQ(e->attrs[1].default_value, "x");
  EXPECT_EQ(e->attrs[3].def, AttributeDecl::Default::kFixed);
  EXPECT_EQ(e->RequiredAttrChars(), 5u);  // just ` a=""`
}

TEST(DtdTest, AttlistBeforeElementIsMerged) {
  Dtd dtd = MustParse(
      "<!ATTLIST e id ID #REQUIRED><!ELEMENT e (#PCDATA)>", "e");
  const ElementDecl* e = dtd.Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->model.kind, ContentModel::Kind::kPcdata);
  ASSERT_EQ(e->attrs.size(), 1u);
  EXPECT_TRUE(e->attrs[0].required());
}

TEST(DtdTest, DetectsRecursion) {
  Dtd direct = MustParse("<!ELEMENT a (a?)>", "a");
  EXPECT_TRUE(direct.IsRecursive());
  Dtd mutual = MustParse(
      "<!ELEMENT a (b?)><!ELEMENT b (c?)><!ELEMENT c (a?)>", "a");
  EXPECT_TRUE(mutual.IsRecursive());
  Dtd dag = MustParse(
      "<!ELEMENT a (b,c)><!ELEMENT b (d?)><!ELEMENT c (d?)>"
      "<!ELEMENT d (#PCDATA)>",
      "a");
  EXPECT_FALSE(dag.IsRecursive());
}

TEST(DtdTest, ValidateCatchesUndeclaredChildren) {
  Dtd dtd = MustParse("<!ELEMENT a (ghost?)>", "a");
  EXPECT_FALSE(dtd.Validate().ok());
}

TEST(DtdTest, SkipsEntitiesCommentsAndPEs) {
  Dtd dtd = MustParse(
      "<!-- header --><!ENTITY amp2 \"&\">\n"
      "<!ELEMENT a EMPTY> %param; <!NOTATION n SYSTEM \"x\">",
      "a");
  EXPECT_NE(dtd.Find("a"), nullptr);
}

TEST(DtdTest, ToStringRoundTrips) {
  Dtd dtd = MustParse(kXmarkExcerpt);
  Dtd again = MustParse(dtd.ToString());
  EXPECT_EQ(again.root(), "site");
  EXPECT_EQ(again.elements().size(), dtd.elements().size());
  EXPECT_EQ(again.Find("item")->model.ToString(),
            dtd.Find("item")->model.ToString());
}

TEST(GlushkovTest, PositionsAndFollowForSeq) {
  Glushkov g = Glushkov::Build(*ParseContentModel("(a,b,c)"));
  ASSERT_EQ(g.num_positions(), 3u);
  EXPECT_FALSE(g.nullable);
  EXPECT_EQ(g.first, (std::vector<int>{0}));
  EXPECT_TRUE(g.last[2]);
  EXPECT_FALSE(g.last[0]);
  EXPECT_EQ(g.follow[0], (std::vector<int>{1}));
  EXPECT_EQ(g.follow[1], (std::vector<int>{2}));
  EXPECT_TRUE(g.follow[2].empty());
}

TEST(GlushkovTest, ChoiceAndStar) {
  // (b|c)* -- the paper's element a.
  Glushkov g = Glushkov::Build(*ParseContentModel("(b|c)*"));
  ASSERT_EQ(g.num_positions(), 2u);
  EXPECT_TRUE(g.nullable);
  EXPECT_EQ(g.first.size(), 2u);
  EXPECT_TRUE(g.last[0]);
  EXPECT_TRUE(g.last[1]);
  // Both positions follow both positions.
  EXPECT_EQ(g.follow[0].size(), 2u);
  EXPECT_EQ(g.follow[1].size(), 2u);
}

TEST(GlushkovTest, OptionalTail) {
  // (b,b?) -- the paper's element c.
  Glushkov g = Glushkov::Build(*ParseContentModel("(b,b?)"));
  ASSERT_EQ(g.num_positions(), 2u);
  EXPECT_FALSE(g.nullable);
  EXPECT_EQ(g.first, (std::vector<int>{0}));
  EXPECT_TRUE(g.last[0]) << "b? may be absent";
  EXPECT_TRUE(g.last[1]);
  EXPECT_EQ(g.follow[0], (std::vector<int>{1}));
}

TEST(GlushkovTest, NullableSeqPropagatesFirst) {
  Glushkov g = Glushkov::Build(*ParseContentModel("(a?,b)"));
  ASSERT_EQ(g.num_positions(), 2u);
  EXPECT_EQ(g.first.size(), 2u) << "b can start when a? is skipped";
  EXPECT_FALSE(g.nullable);
}

TEST(GlushkovTest, MixedContent) {
  Glushkov g = Glushkov::Build(*ParseContentModel("(#PCDATA|em|b)*"));
  ASSERT_EQ(g.num_positions(), 2u);
  EXPECT_TRUE(g.nullable);
  EXPECT_EQ(g.follow[0].size(), 2u);
  EXPECT_EQ(g.follow[1].size(), 2u);
}

TEST(GlushkovTest, PlusIsNotNullable) {
  Glushkov g = Glushkov::Build(*ParseContentModel("(a+)"));
  EXPECT_FALSE(g.nullable);
  EXPECT_EQ(g.follow[0], (std::vector<int>{0}));
}

// --- DTD-automaton: the paper's Fig. 5 -----------------------------------

class PaperAutomatonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MustParse(kPaperDtd);
    auto a = DtdAutomaton::Build(dtd_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    aut_ = std::make_unique<DtdAutomaton>(std::move(*a));
  }

  /// Follows the unique transition with `token` from `state`.
  int Step(int state, const std::string& name, bool closing) {
    int token = aut_->FindToken(name, closing);
    EXPECT_GE(token, 0) << (closing ? "</" : "<") << name << ">";
    for (const auto& t : aut_->Out(state)) {
      if (t.token == token) return t.to;
    }
    ADD_FAILURE() << "no transition on " << (closing ? "</" : "<") << name
                  << "> from state " << state;
    return -1;
  }

  Dtd dtd_;
  std::unique_ptr<DtdAutomaton> aut_;
};

TEST_F(PaperAutomatonTest, HasElevenStatesLikeFig5) {
  // Fig. 5: q0 plus dual pairs for a, b-under-a, c-under-a, b1-under-c,
  // b2-under-c = 1 + 2*5 = 11.
  EXPECT_EQ(aut_->num_states(), 11);
  EXPECT_EQ(aut_->instances().size(), 5u);
}

TEST_F(PaperAutomatonTest, AcceptsValidTokenSequences) {
  // <a><c><b></b><b></b></c><b></b></a>
  int s = 0;
  s = Step(s, "a", false);
  s = Step(s, "c", false);
  s = Step(s, "b", false);
  s = Step(s, "b", true);
  s = Step(s, "b", false);
  s = Step(s, "b", true);
  s = Step(s, "c", true);
  s = Step(s, "b", false);
  s = Step(s, "b", true);
  s = Step(s, "a", true);
  EXPECT_EQ(s, aut_->final_state());
}

TEST_F(PaperAutomatonTest, RejectsInvalidContinuations) {
  int q1 = Step(0, "a", false);
  // From <a>, reading </b> or <a> is impossible.
  EXPECT_EQ(aut_->FindToken("a", false), 0);
  for (const auto& t : aut_->Out(q1)) {
    EXPECT_NE(aut_->token(t.token), (TagToken{"a", false}));
    EXPECT_NE(aut_->token(t.token), (TagToken{"b", true}));
  }
  // From inside c after one b, a second b or </c> are the options.
  int qc = Step(q1, "c", false);
  int qb1 = Step(qc, "b", false);
  int qb1c = Step(qb1, "b", true);
  std::set<std::string> tokens;
  for (const auto& t : aut_->Out(qb1c)) {
    tokens.insert(aut_->token(t.token).ToString());
  }
  EXPECT_EQ(tokens, (std::set<std::string>{"<b>", "</c>"}));
}

TEST_F(PaperAutomatonTest, HomogeneityHolds) {
  // Every state is entered by exactly one token.
  std::vector<std::set<int>> incoming(
      static_cast<size_t>(aut_->num_states()));
  for (int s = 0; s < aut_->num_states(); ++s) {
    for (const auto& t : aut_->Out(s)) {
      incoming[static_cast<size_t>(t.to)].insert(t.token);
    }
  }
  for (int s = 1; s < aut_->num_states(); ++s) {
    EXPECT_LE(incoming[static_cast<size_t>(s)].size(), 1u) << "state " << s;
  }
}

TEST_F(PaperAutomatonTest, ParentStatesMatchExample8) {
  // q0 is the parent of a's states; a's open state is the parent of the
  // b-under-a and c-under-a states.
  int q1 = Step(0, "a", false);
  int q2 = Step(q1, "b", false);
  int q3 = Step(q1, "c", false);
  EXPECT_EQ(aut_->ParentState(q1), 0);
  EXPECT_EQ(aut_->ParentState(q2), q1);
  EXPECT_EQ(aut_->ParentState(q3), q1);
  EXPECT_EQ(aut_->ParentState(DtdAutomaton::Dual(q2)), q1);
  int q4 = Step(q3, "b", false);
  EXPECT_EQ(aut_->ParentState(q4), q3);
}

TEST_F(PaperAutomatonTest, DocumentBranchesMatchExample9) {
  int q1 = Step(0, "a", false);
  int q2 = Step(q1, "b", false);
  int q3 = Step(q1, "c", false);
  int q4 = Step(q3, "b", false);
  EXPECT_TRUE(aut_->BranchLabels(0).empty());
  EXPECT_EQ(aut_->BranchLabels(q1), (std::vector<std::string>{"a"}));
  EXPECT_EQ(aut_->BranchLabels(q2), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(aut_->BranchLabels(DtdAutomaton::Dual(q2)),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(aut_->BranchLabels(q4), (std::vector<std::string>{"a", "c", "b"}));
}

TEST_F(PaperAutomatonTest, DualStatePairing) {
  int q1 = Step(0, "a", false);
  EXPECT_EQ(DtdAutomaton::Dual(DtdAutomaton::Dual(q1)), q1);
  EXPECT_TRUE(DtdAutomaton::IsOpenState(q1));
  EXPECT_TRUE(DtdAutomaton::IsCloseState(DtdAutomaton::Dual(q1)));
  EXPECT_EQ(DtdAutomaton::Dual(0), 0);
}

TEST(DtdAutomatonTest, RejectsRecursiveDtd) {
  Dtd dtd = MustParse("<!ELEMENT a (a?)>", "a");
  auto a = DtdAutomaton::Build(dtd);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kUnsupported);
}

TEST(DtdAutomatonTest, RejectsAnyContent) {
  Dtd dtd = MustParse("<!ELEMENT a ANY>", "a");
  auto a = DtdAutomaton::Build(dtd);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kUnsupported);
}

TEST(DtdAutomatonTest, XmarkExcerptShape) {
  Dtd dtd = MustParse(kXmarkExcerpt);
  auto a = DtdAutomaton::Build(dtd);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // site + regions + 3 regions + 3*(item + 6 children) = 26 instances.
  EXPECT_EQ(a->instances().size(), 26u);
  // Every instance has a branch starting with "site".
  for (size_t i = 0; i < a->instances().size(); ++i) {
    auto branch = a->BranchLabels(DtdAutomaton::OpenState(static_cast<int>(i)));
    ASSERT_FALSE(branch.empty());
    EXPECT_EQ(branch.front(), "site");
  }
}

TEST(MinSerialTest, TagLengths) {
  Dtd dtd = MustParse(kXmarkExcerpt);
  MinSerial ms(&dtd);
  EXPECT_EQ(ms.OpenTag("site"), 6u);        // <site>
  EXPECT_EQ(ms.CloseTag("site"), 7u);       // </site>
  EXPECT_EQ(ms.BachelorTag("asia"), 7u);    // <asia/>
  // <incategory category=""/> : (10+3) + (8+4) = 25
  EXPECT_EQ(ms.BachelorTag("incategory"), 25u);
}

TEST(MinSerialTest, Example1JumpIs25) {
  // "<regions><africa/><asia/>" has length 25: the minimum string preceding
  // <australia> after <site> (Example 1).
  Dtd dtd = MustParse(kXmarkExcerpt);
  MinSerial ms(&dtd);
  uint64_t skip = ms.OpenTag("regions") + ms.Element("africa") +
                  ms.Element("asia");
  EXPECT_EQ(ms.Element("africa"), 9u);  // <africa/>
  EXPECT_EQ(ms.Element("asia"), 7u);    // <asia/>
  EXPECT_EQ(skip, 25u);
}

TEST(MinSerialTest, NonNullableUsesPairedForm) {
  Dtd dtd = MustParse(kXmarkExcerpt);
  MinSerial ms(&dtd);
  // item requires location..incategory content; its minimum is the paired
  // form around the children's minimal forms.
  uint64_t content = ms.Element("location") + ms.Element("name") +
                     ms.Element("payment") + ms.Element("description") +
                     ms.Element("shipping") + ms.Element("incategory");
  EXPECT_EQ(ms.Content("item"), content);
  EXPECT_EQ(ms.Element("item"), 6u + content + 7u);
  // regions is not nullable either.
  EXPECT_EQ(ms.Element("regions"),
            9u + ms.Element("africa") + ms.Element("asia") +
                ms.Element("australia") + 10u);
}

TEST(MinSerialTest, ChoiceTakesCheapestBranch) {
  Dtd dtd = MustParse(
      "<!ELEMENT a (long_element_name | b)><!ELEMENT long_element_name EMPTY>"
      "<!ELEMENT b EMPTY>",
      "a");
  MinSerial ms(&dtd);
  EXPECT_EQ(ms.Content("a"), 4u);  // <b/>
  EXPECT_EQ(ms.Element("a"), 3u + 4u + 4u);
}

TEST(MinSerialTest, UndeclaredElementIsHuge) {
  Dtd dtd = MustParse("<!ELEMENT a EMPTY>", "a");
  MinSerial ms(&dtd);
  EXPECT_GT(ms.Element("ghost"), 1u << 30);
}

}  // namespace
}  // namespace smpx::dtd
