// White-box tests of the skip-table preprocessing: known Boyer-Moore
// good-suffix values and Commentz-Walter shift behaviour on classical
// textbook cases, plus invariants checked over random pattern sets
// (shifts are always in [1, bound] and never skip a match).

#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "strmatch/boyer_moore.h"
#include "strmatch/commentz_walter.h"
#include "strmatch/naive.h"

namespace smpx::strmatch {
namespace {

// Collects all match positions by repeated search.
std::vector<size_t> AllMatches(const Matcher& m, std::string_view text) {
  std::vector<size_t> out;
  size_t from = 0;
  for (;;) {
    Match r = m.Search(text, from, nullptr);
    if (!r.found()) return out;
    out.push_back(r.pos);
    from = r.pos + 1;
  }
}

TEST(BmTablesTest, TextbookGcagagag) {
  // The classical example: searching GCAGAGAG in GCATCGCAGAGAGTATACAGTACG.
  BoyerMooreMatcher m("GCAGAGAG");
  Match r = m.Search("GCATCGCAGAGAGTATACAGTACG", 0, nullptr);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.pos, 5u);
}

TEST(BmTablesTest, GoodSuffixBeatsBadCharOnRepeats) {
  // With pattern "abab" in text "abacabab", the bad-character rule alone
  // would crawl; the search must still find the match and stay sublinear
  // in comparisons on mismatch-heavy text.
  BoyerMooreMatcher m("abab");
  EXPECT_EQ(m.Search("abacabab", 0, nullptr).pos, 4u);
  SearchStats stats;
  std::string text(4096, 'a');
  EXPECT_FALSE(m.Search(text, 0, &stats).found());
  EXPECT_LT(stats.comparisons, 2 * text.size())
      << "BM must not degrade to quadratic on periodic text";
}

TEST(BmTablesTest, AllOccurrencesViaRestart) {
  BoyerMooreMatcher m("ana");
  EXPECT_EQ(AllMatches(m, "banana"), (std::vector<size_t>{1, 3}));
}

TEST(CwTablesTest, NeverSkipsAnOccurrence) {
  // Exhaustive cross-check on small alphabets: CW must find exactly the
  // occurrence set the naive scan finds, across every 'from' offset.
  std::mt19937 rng(17);
  std::uniform_int_distribution<int> len(1, 6);
  std::uniform_int_distribution<int> ch(0, 2);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::string> patterns;
    int n = 1 + round % 4;
    for (int i = 0; i < n; ++i) {
      std::string p;
      int l = len(rng);
      for (int k = 0; k < l; ++k) p += static_cast<char>('a' + ch(rng));
      patterns.push_back(p);
    }
    std::string text;
    int tl = 40 + round;
    for (int k = 0; k < tl; ++k) text += static_cast<char>('a' + ch(rng));

    CommentzWalterMatcher cw(patterns);
    NaiveMatcher naive(patterns);
    for (size_t from = 0; from < text.size(); from += 3) {
      Match expected = naive.Search(text, from, nullptr);
      Match actual = cw.Search(text, from, nullptr);
      ASSERT_EQ(actual.found(), expected.found())
          << "from=" << from << " text=" << text;
      if (expected.found()) {
        ASSERT_EQ(actual.pos, expected.pos) << "from=" << from;
      }
    }
  }
}

TEST(CwTablesTest, ShiftsAreBoundedByWmin) {
  // No single forward shift may exceed wmin (the shift2 cap), otherwise a
  // short pattern's occurrence could be stepped over.
  CommentzWalterMatcher m({"abcdef", "xy"});
  SearchStats stats;
  std::string text(10000, 'q');
  EXPECT_FALSE(m.Search(text, 0, &stats).found());
  EXPECT_GT(stats.shifts, 0u);
  EXPECT_LE(stats.shift_chars, stats.shifts * 2)
      << "wmin = 2 bounds each shift";
}

TEST(CwTablesTest, LongSharedSuffixes) {
  // Patterns sharing suffixes exercise shift1 via the failure chains.
  CommentzWalterMatcher m({"ending", "bending", "ding"});
  EXPECT_EQ(AllMatches(m, "the bending was ending with ding"),
            (std::vector<size_t>{4, 5, 7, 16, 18, 28}));
}

TEST(CwTablesTest, SingletonEqualsBoyerMoorePositions) {
  std::string text = "lorem ipsum dolor sit amet consectetur";
  for (const char* pat : {"dolor", "or", "t"}) {
    BoyerMooreMatcher bm(pat);
    CommentzWalterMatcher cw({pat});
    EXPECT_EQ(AllMatches(bm, text), AllMatches(cw, text)) << pat;
  }
}

TEST(SetHorspoolTablesTest, AgreesWithCwOnOccurrences) {
  std::vector<std::string> patterns = {"<name", "<date", "</name"};
  std::string text =
      "<person><name>x</name><date>1/1</date><name>y</name></person>";
  CommentzWalterMatcher cw(patterns);
  SetHorspoolMatcher sh(patterns);
  EXPECT_EQ(AllMatches(cw, text), AllMatches(sh, text));
}

TEST(ShiftAccountingTest, AvgShiftConsistency) {
  BoyerMooreMatcher m("<incategory");
  SearchStats stats;
  std::string text(50000, 'z');
  m.Search(text, 0, &stats);
  EXPECT_NEAR(stats.AvgShift(),
              static_cast<double>(stats.shift_chars) /
                  static_cast<double>(stats.shifts),
              1e-9);
  // The pattern's last byte never occurs, so the memchr skip loop discards
  // the whole text as a single shift without inspecting any character in
  // the comparison loop.
  EXPECT_EQ(stats.shifts, 1u);
  EXPECT_EQ(stats.shift_chars, text.size() - (m.min_length() - 1));
  EXPECT_EQ(stats.comparisons, 0u);
}

TEST(ShiftAccountingTest, MemchrSkipStillCountsVerifyComparisons) {
  // The probe byte ('<') occurs but the pattern never does: every memchr
  // hit pays a right-to-left verify, so comparisons stay positive while
  // shifts cover the gaps between candidates.
  BoyerMooreMatcher m("<ab");
  SearchStats stats;
  std::string text;
  for (int i = 0; i < 100; ++i) text += "zz<xb";
  EXPECT_FALSE(m.Search(text, 0, &stats).found());
  EXPECT_GT(stats.comparisons, 100u);  // >= 2 per '<' candidate
  EXPECT_GT(stats.AvgShift(), 1.0);
}

}  // namespace
}  // namespace smpx::strmatch
