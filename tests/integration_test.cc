// Cross-module integration and property tests -- the heart of the
// correctness argument:
//
//  1. Property (Theorem 1 / Lemma 1): for random nonrecursive DTDs, random
//     valid documents and random projection paths, the prefilter output is
//     well-formed and *projection-safe* (Definition 2): every path
//     evaluates top-level-equal on input and output.
//  2. Differential: the prefilter and the tokenizing SAX projector --
//     independent implementations of the same semantics -- produce
//     identical bytes on the paper's workloads.
//  3. The generated datasets flow end-to-end through compile + run.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/sax_projector.h"
#include "common/io.h"
#include "core/prefilter.h"
#include "query/equivalence.h"
#include "xml/tokenizer.h"
#include "xmlgen/dtd_sampler.h"
#include "xmlgen/medline.h"
#include "xmlgen/text_gen.h"
#include "xmlgen/xmark.h"

namespace smpx {
namespace {

std::vector<paths::ProjectionPath> P(std::string_view list) {
  auto r = paths::ProjectionPath::ParseList(list);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// --- Property tests over random instances ---------------------------------

struct PropertyCase {
  uint64_t seed;
  int num_elements;
  int num_paths;
};

class ProjectionSafetyProperty
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ProjectionSafetyProperty, PrefilterOutputIsSafeAndWellFormed) {
  const PropertyCase& param = GetParam();
  xmlgen::Rng rng(param.seed);
  int compiled = 0;
  for (int round = 0; round < 40; ++round) {
    xmlgen::RandomDtdOptions dopts;
    dopts.num_elements = param.num_elements;
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng, dopts);

    xmlgen::RandomPathsOptions popts;
    popts.num_paths = param.num_paths;
    std::vector<paths::ProjectionPath> paths =
        xmlgen::RandomPaths(dtd, &rng, popts);

    auto pf = core::Prefilter::Compile(dtd, paths);
    ASSERT_TRUE(pf.ok()) << pf.status().ToString() << "\n" << dtd.ToString();
    ++compiled;

    for (int doc_round = 0; doc_round < 5; ++doc_round) {
      std::string doc = xmlgen::RandomDocument(dtd, &rng);
      core::RunStats stats;
      auto out = pf->RunOnBuffer(doc, &stats);
      ASSERT_TRUE(out.ok()) << out.status().ToString() << "\ndtd: "
                            << dtd.ToString() << "\ndoc: " << doc;

      // (a) Well-formed output.
      ASSERT_TRUE(xml::CheckWellFormed(*out).ok())
          << "output not well-formed\npaths: "
          << paths::ProjectionPath::ParseList("/x").status().ToString()
          << "\ndtd: " << dtd.ToString() << "\ndoc: " << doc
          << "\nout: " << *out;

      // (b) Projection safety (Definition 2) for the *effective* path set
      // (including the implicit /*).
      auto report = query::CheckProjectionSafety(doc, *out, pf->paths());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ASSERT_TRUE(report->safe)
          << report->first_violation << "\ndtd: " << dtd.ToString()
          << "\ndoc: " << doc << "\nout: " << *out;

      // (c) The engine never produces more bytes than it consumed.
      ASSERT_LE(out->size(), doc.size());
    }
  }
  EXPECT_GT(compiled, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProjectionSafetyProperty,
    ::testing::Values(PropertyCase{101, 5, 2}, PropertyCase{202, 8, 3},
                      PropertyCase{303, 12, 4}, PropertyCase{404, 8, 1},
                      PropertyCase{505, 15, 5}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(ProjectionSafetyProperty, SaxProjectorIsSafeToo) {
  xmlgen::Rng rng(777);
  for (int round = 0; round < 30; ++round) {
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::vector<paths::ProjectionPath> paths = xmlgen::RandomPaths(dtd, &rng);
    baselines::SaxProjector projector(paths);
    for (int doc_round = 0; doc_round < 3; ++doc_round) {
      std::string doc = xmlgen::RandomDocument(dtd, &rng);
      StringSink sink;
      ASSERT_TRUE(projector.Project(doc, &sink).ok());
      ASSERT_TRUE(xml::CheckWellFormed(sink.str()).ok()) << sink.str();
      auto report =
          query::CheckProjectionSafety(doc, sink.str(), projector.paths());
      ASSERT_TRUE(report.ok());
      ASSERT_TRUE(report->safe)
          << report->first_violation << "\ndtd: " << dtd.ToString()
          << "\ndoc: " << doc << "\nout: " << sink.str();
    }
  }
}

// --- Differential tests on the paper's workloads ---------------------------

struct WorkloadCase {
  const char* name;
  const char* paths;
};

class XmarkDifferential : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  static std::string doc_;
  static void SetUpTestSuite() {
    xmlgen::XmarkOptions opts;
    opts.target_bytes = 1 << 20;
    doc_ = xmlgen::GenerateXmark(opts);
  }
  static void TearDownTestSuite() { doc_.clear(); }
};
std::string XmarkDifferential::doc_;

TEST_P(XmarkDifferential, PrefilterMatchesSaxProjector) {
  const WorkloadCase& wc = GetParam();
  auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(), P(wc.paths));
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  core::RunStats stats;
  auto smp_out = pf->RunOnBuffer(doc_, &stats);
  ASSERT_TRUE(smp_out.ok()) << smp_out.status().ToString();

  baselines::SaxProjector projector(P(wc.paths));
  StringSink sax_out;
  ASSERT_TRUE(projector.Project(doc_, &sax_out).ok());

  ASSERT_EQ(*smp_out, sax_out.str()) << "differential mismatch";
  EXPECT_TRUE(xml::CheckWellFormed(*smp_out).ok());
  // And the prefilter must actually skip input.
  EXPECT_LT(stats.CharCompPct(), 60.0);

  auto report = query::CheckProjectionSafety(doc_, *smp_out, pf->paths());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe) << report->first_violation;
}

INSTANTIATE_TEST_SUITE_P(
    XmarkWorkloads, XmarkDifferential,
    ::testing::Values(
        WorkloadCase{"XM1", "/site/people/person@ /site/people/person/name#"},
        WorkloadCase{"XM2",
                     "/site/open_auctions/open_auction/bidder/increase#"},
        WorkloadCase{"XM5",
                     "/site/closed_auctions/closed_auction/price#"},
        WorkloadCase{"XM6", "/site/regions//item@"},
        WorkloadCase{"XM13",
                     "/site/regions/australia/item/name# "
                     "/site/regions/australia/item/description#"},
        WorkloadCase{"XM14", "/site//item/name# /site//item/description#"},
        WorkloadCase{"XM17",
                     "/site/people/person/name# "
                     "/site/people/person/homepage"},
        WorkloadCase{"XM19",
                     "/site/regions//item/location# "
                     "/site/regions//item/name#"},
        WorkloadCase{"Desc", "//australia//description#"},
        WorkloadCase{"Star", "/*"}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return info.param.name;
    });

TEST(MedlineDifferential, AllFiveQueries) {
  xmlgen::MedlineOptions opts;
  opts.target_bytes = 1 << 20;
  std::string doc = xmlgen::GenerateMedline(opts);
  const char* workloads[] = {
      "/MedlineCitationSet//CollectionTitle#",
      "/MedlineCitationSet//DataBank/DataBankName# "
      "/MedlineCitationSet//DataBank/AccessionNumberList#",
      "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject#",
      "/MedlineCitationSet//CopyrightInformation#",
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#",
  };
  for (const char* w : workloads) {
    auto pf = core::Prefilter::Compile(xmlgen::MedlineDtd(), P(w));
    ASSERT_TRUE(pf.ok()) << pf.status().ToString() << " " << w;
    auto smp_out = pf->RunOnBuffer(doc);
    ASSERT_TRUE(smp_out.ok()) << smp_out.status().ToString() << " " << w;
    baselines::SaxProjector projector(P(w));
    StringSink sax_out;
    ASSERT_TRUE(projector.Project(doc, &sax_out).ok());
    ASSERT_EQ(*smp_out, sax_out.str()) << w;
  }
}

TEST(MedlineIntegration, AbsentElementProjectsToRootOnly) {
  // Query M1: CollectionTitle is declared but never generated; projecting
  // for it must keep just the root (paper: Proj. Size 0 MB).
  xmlgen::MedlineOptions opts;
  opts.target_bytes = 512 << 10;
  std::string doc = xmlgen::GenerateMedline(opts);
  auto pf = core::Prefilter::Compile(
      xmlgen::MedlineDtd(), P("/MedlineCitationSet//CollectionTitle#"));
  ASSERT_TRUE(pf.ok());
  core::RunStats stats;
  auto out = pf->RunOnBuffer(doc, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "<MedlineCitationSet></MedlineCitationSet>");
  EXPECT_LT(stats.CharCompPct(), 30.0);
}

TEST(XmarkIntegration, StreamingRunMatchesBufferRun) {
  xmlgen::XmarkOptions opts;
  opts.target_bytes = 512 << 10;
  std::string doc = xmlgen::GenerateXmark(opts);
  auto pf = core::Prefilter::Compile(
      xmlgen::XmarkDtd(), P("/site/regions/australia/item/name#"));
  ASSERT_TRUE(pf.ok());
  auto big = pf->RunOnBuffer(doc);
  ASSERT_TRUE(big.ok());
  core::EngineOptions small_window;
  small_window.window_capacity = 512;
  core::RunStats stats;
  auto small = pf->RunOnBuffer(doc, &stats, small_window);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(*small, *big);
  EXPECT_LE(stats.window_peak, 16u << 10);
}

TEST(XmarkIntegration, CharCompStaysPaperLike) {
  // Table I reports 10-23% inspected characters across XMark queries.
  xmlgen::XmarkOptions opts;
  opts.target_bytes = 2 << 20;
  std::string doc = xmlgen::GenerateXmark(opts);
  auto pf = core::Prefilter::Compile(
      xmlgen::XmarkDtd(),
      P("/site/closed_auctions/closed_auction/price#"));
  ASSERT_TRUE(pf.ok());
  core::RunStats stats;
  ASSERT_TRUE(pf->RunOnBuffer(doc, &stats).ok());
  EXPECT_GT(stats.CharCompPct(), 2.0);
  EXPECT_LT(stats.CharCompPct(), 45.0);
  EXPECT_GT(stats.AvgShift(), 3.0);
}

}  // namespace
}  // namespace smpx
