// smpxd server tests: concurrent clients differentially byte-identical
// to the offline CLI, cross-connection cursor-token resume, and the
// robustness matrix -- disconnect mid-stream, oversized and garbage
// frames, admission rejection under a tiny memory budget. Most tests run
// the Server in-process (same code path as the smpxd binary); one drives
// the real daemon process end-to-end via the ready line.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/thread_pool.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket.h"

namespace smpx::server {
namespace {

constexpr char kDtdText[] =
    "<!DOCTYPE set [ <!ELEMENT set (rec)*>"
    " <!ELEMENT rec (name, age)> <!ELEMENT name (#PCDATA)>"
    " <!ELEMENT age (#PCDATA)> ]>";
constexpr char kPaths[] = "/set/rec@ /set/rec/name#";
constexpr int kRecords = 120;

std::string TestDoc() {
  std::string doc = "<set>";
  for (int i = 0; i < kRecords; ++i) {
    doc += "<rec><name>person-" + std::to_string(i) + "</name><age>" +
           std::to_string(20 + i % 60) + "</age></rec>";
  }
  doc += "</set>";
  return doc;
}

core::Prefilter MustCompile() {
  auto dtd = dtd::Dtd::Parse(kDtdText);
  EXPECT_TRUE(dtd.ok());
  auto paths = paths::ProjectionPath::ParseList(kPaths);
  EXPECT_TRUE(paths.ok());
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*paths));
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

/// On-disk fixture shared by every test in the process: the document the
/// server serves, plus offline ground truth (full projection and a
/// granularity-1 boundary index for expected seek slices).
struct Fixture {
  std::string doc_path;
  std::string doc;
  std::string projected;  // full offline projection
  core::Prefilter pf;
  index::BoundaryIndex idx;

  Fixture() : pf(MustCompile()) {
    doc = TestDoc();
    doc_path = ::testing::TempDir() + "/server_test_doc.xml";
    EXPECT_TRUE(WriteStringToFile(doc_path, doc).ok());
    auto out = pf.RunOnBuffer(doc);
    EXPECT_TRUE(out.ok());
    projected = std::move(*out);
    parallel::ThreadPool pool(3);
    index::BoundaryIndexOptions bopts;
    bopts.granularity_bytes = 1;
    auto built = index::BoundaryIndex::Build(pf.tables(), doc, &pool, bopts);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    idx = std::move(*built);
  }

  /// The offline engine's bytes for `count` records starting at ordinal
  /// `rec` (to the end when count == 0).
  std::string SeekSlice(uint64_t rec, size_t record_count) const {
    auto cur = index::Cursor::OpenAtRecord(idx, pf.tables(), doc, rec);
    EXPECT_TRUE(cur.ok()) << cur.status().ToString();
    StringSink sink;
    if (record_count > 0) {
      auto n = cur->Next(record_count, &sink);
      EXPECT_TRUE(n.ok());
    } else {
      EXPECT_TRUE(cur->Drain(&sink).ok());
    }
    return sink.str();
  }
};

const Fixture& SharedFixture() {
  static const Fixture* f = new Fixture();
  return *f;
}

Request BaseRequest(const Fixture& f) {
  Request req;
  req.dtd_text = kDtdText;
  req.paths_text = kPaths;
  req.doc_path = f.doc_path;
  return req;
}

std::unique_ptr<Server> StartServer(uint64_t max_buffer = 64u << 20,
                                    uint64_t per_request = 1u << 20) {
  static std::atomic<int> counter{0};
  ServerOptions opts;
  opts.unix_path = ::testing::TempDir() + "/smpxd_test_" +
                   std::to_string(counter++) + ".sock";
  opts.max_buffer_bytes = max_buffer;
  opts.per_request_bytes = per_request;
  opts.cache.index_granularity = 1;
  auto srv = std::make_unique<Server>(opts);
  EXPECT_TRUE(srv->Start().ok());
  return srv;
}

TEST(AdmissionTest, AcquireReleaseArithmetic) {
  Admission a(10);
  EXPECT_TRUE(a.TryAcquire(4));
  EXPECT_TRUE(a.TryAcquire(6));
  EXPECT_EQ(a.available(), 0u);
  EXPECT_FALSE(a.TryAcquire(1));
  a.Release(6);
  EXPECT_TRUE(a.TryAcquire(5));
  EXPECT_FALSE(a.TryAcquire(2));
}

TEST(ServerTest, ProjectMatchesOfflineEngine) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();
  auto client = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Request req = BaseRequest(f);
  StringSink sink;
  auto t = client->Call(req, &sink);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(sink.str(), f.projected);
  EXPECT_EQ(t->emitted_bytes, f.projected.size());
  EXPECT_TRUE(t->at_end);
  EXPECT_TRUE(t->token.empty());
}

TEST(ServerTest, EightConcurrentClientsAreByteIdentical) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();
  constexpr int kClients = 8;
  constexpr int kRoundsPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("unix:" + srv->unix_path());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        // Mixed workload per connection: a full projection, then seeks
        // at client-specific ordinals.
        Request req = BaseRequest(f);
        StringSink sink;
        if (round % 3 == 0) {
          auto t = client->Call(req, &sink);
          if (!t.ok() || sink.str() != f.projected) {
            ++failures;
            return;
          }
        } else {
          uint64_t rec =
              static_cast<uint64_t>((c * 17 + round * 31) % kRecords);
          req.op = Op::kSeek;
          req.by_record = true;
          req.target = rec;
          req.count = 3;
          auto t = client->Call(req, &sink);
          if (!t.ok() || sink.str() != f.SeekSlice(rec, 3)) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerTest, TokenResumeAcrossTwoConnections) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();

  // Connection 1: open at record 10, take 4 records, pocket the token.
  auto c1 = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(c1.ok());
  Request seek = BaseRequest(f);
  seek.op = Op::kSeek;
  seek.by_record = true;
  seek.target = 10;
  seek.count = 4;
  StringSink first;
  auto t1 = c1->Call(seek, &first);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  EXPECT_EQ(first.str(), f.SeekSlice(10, 4));
  ASSERT_FALSE(t1->at_end);
  ASSERT_FALSE(t1->token.empty());
  EXPECT_EQ(t1->record_position, 14u);

  // Connection 2 (a different socket, as from another load-balanced
  // client): restore the token and drain; the concatenation must be the
  // byte-exact suffix from record 10.
  auto c2 = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(c2.ok());
  Request resume = BaseRequest(f);
  resume.op = Op::kResume;
  resume.token = t1->token;
  StringSink rest;
  auto t2 = c2->Call(resume, &rest);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_TRUE(t2->at_end);
  EXPECT_EQ(first.str() + rest.str(),
            f.SeekSlice(10, 0));
}

TEST(ServerTest, TamperedTokenFailsClosed) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();
  auto c = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(c.ok());
  Request seek = BaseRequest(f);
  seek.op = Op::kSeek;
  seek.by_record = true;
  seek.target = 5;
  seek.count = 1;
  auto t = c->Call(seek, nullptr);
  ASSERT_TRUE(t.ok());
  ASSERT_FALSE(t->token.empty());
  std::string bad = t->token;
  bad[bad.size() / 2] ^= 0x40;
  Request resume = BaseRequest(f);
  resume.op = Op::kResume;
  resume.token = bad;
  auto r = c->Call(resume, nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(c->last_error_retryable());
}

TEST(ServerTest, DisconnectMidStreamLeavesServerServing) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();
  {
    // Raw connection: send a valid project request, read ONE frame, then
    // slam the socket shut while the server is still streaming.
    auto fd = Connect("unix:" + srv->unix_path());
    ASSERT_TRUE(fd.ok());
    Request req = BaseRequest(f);
    ASSERT_TRUE(WriteFrame(*fd, kFrameRequest, req.Encode()).ok());
    char kind = 0;
    std::string payload;
    ASSERT_TRUE(ReadFrame(*fd, &kind, &payload).ok());
    fd->Close();
  }
  // The server must shrug it off and serve the next client in full.
  auto client = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(client.ok());
  StringSink sink;
  auto t = client->Call(BaseRequest(f), &sink);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(sink.str(), f.projected);
}

TEST(ServerTest, OversizedFrameIsRejectedBeforeAllocation) {
  auto srv = StartServer();
  auto fd = Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(fd.ok());
  // Length prefix claims ~4 GiB; the server must refuse without reading
  // (or allocating) a body.
  std::string hdr = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_TRUE(WriteAll(*fd, hdr).ok());
  char kind = 0;
  std::string payload;
  Status s = ReadFrame(*fd, &kind, &payload);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(kind, kFrameError);
  auto e = ErrorFrame::Decode(payload);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->code, StatusCode::kParseError);
  EXPECT_FALSE(e->retryable);
  // ... and the connection is closed afterwards.
  char buf;
  EXPECT_EQ(ReadExact(*fd, &buf, 1).code(), StatusCode::kNotFound);
}

TEST(ServerTest, GarbageFramesAreRejected) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();
  {
    // Wrong frame kind.
    auto fd = Connect("unix:" + srv->unix_path());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFrame(*fd, 'X', "junk").ok());
    char kind = 0;
    std::string payload;
    ASSERT_TRUE(ReadFrame(*fd, &kind, &payload).ok());
    EXPECT_EQ(kind, kFrameError);
  }
  {
    // Right kind, undecodable payload.
    auto fd = Connect("unix:" + srv->unix_path());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(WriteFrame(*fd, kFrameRequest, "\x01garbage").ok());
    char kind = 0;
    std::string payload;
    ASSERT_TRUE(ReadFrame(*fd, &kind, &payload).ok());
    ASSERT_EQ(kind, kFrameError);
    auto e = ErrorFrame::Decode(payload);
    ASSERT_TRUE(e.ok());
    EXPECT_FALSE(e->retryable);
  }
  // Server still healthy.
  auto client = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(client.ok());
  auto t = client->Call(BaseRequest(f), nullptr);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
}

TEST(ServerTest, AdmissionRejectsUnderTinyBudgetAndKeepsConnectionOpen) {
  const Fixture& f = SharedFixture();
  // Budget smaller than one request's reservation: every request is
  // rejected with the retryable admission error, but the CONNECTION
  // survives -- back off and resend is the contract.
  auto srv = StartServer(/*max_buffer=*/1024, /*per_request=*/4096);
  auto client = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto t = client->Call(BaseRequest(f), nullptr);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(client->last_error_retryable());
  }
  EXPECT_EQ(srv->admission().available(), 1024u);
}

TEST(ServerTest, BudgetDrainsAndRefillsAcrossRequests) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer(/*max_buffer=*/8192, /*per_request=*/4096);
  auto client = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(client.ok());
  // The reservation is released just AFTER the trailer is written, so the
  // client can observe the pre-release value briefly; poll it back.
  auto refilled = [&](uint64_t want) {
    for (int spin = 0; spin < 1000; ++spin) {
      if (srv->admission().available() == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };
  // Sequential requests each reserve and release; the budget must come
  // back every time (no leak on either the success or the error path).
  for (int i = 0; i < 4; ++i) {
    StringSink sink;
    auto t = client->Call(BaseRequest(f), &sink);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(sink.str(), f.projected);
    EXPECT_TRUE(refilled(8192u));
  }
  Request missing = BaseRequest(f);
  missing.doc_path = f.doc_path + ".does-not-exist";
  auto bad = client->Call(missing, nullptr);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(client->last_error_retryable());
  EXPECT_TRUE(refilled(8192u));
}

TEST(ServerTest, TcpListenerServesTheSameBytes) {
  const Fixture& f = SharedFixture();
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.cache.index_granularity = 1;
  Server srv(opts);
  ASSERT_TRUE(srv.Start().ok());
  ASSERT_GT(srv.tcp_port(), 0);
  auto client =
      Client::Connect("tcp:127.0.0.1:" + std::to_string(srv.tcp_port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  StringSink sink;
  auto t = client->Call(BaseRequest(f), &sink);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(sink.str(), f.projected);
  srv.Stop();
}

TEST(ServerTest, StaleIndexIsRebuiltWhenTheDocumentChanges) {
  const Fixture& f = SharedFixture();
  auto srv = StartServer();
  std::string path = ::testing::TempDir() + "/server_test_mutating.xml";
  ASSERT_TRUE(WriteStringToFile(path, f.doc).ok());
  auto client = Client::Connect("unix:" + srv->unix_path());
  ASSERT_TRUE(client.ok());
  Request req = BaseRequest(f);
  req.doc_path = path;
  StringSink s1;
  ASSERT_TRUE(client->Call(req, &s1).ok());
  EXPECT_EQ(s1.str(), f.projected);

  // Rewrite the document (different record count => different size);
  // the cache must notice and serve the NEW bytes, not yesterday's.
  std::string doc2 = "<set><rec><name>only</name><age>1</age></rec></set>";
  ASSERT_TRUE(WriteStringToFile(path, doc2).ok());
  auto expected2 = f.pf.RunOnBuffer(doc2);
  ASSERT_TRUE(expected2.ok());
  StringSink s2;
  auto t2 = client->Call(req, &s2);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_EQ(s2.str(), *expected2);
  std::remove(path.c_str());
}

#if defined(SMPXD_PATH) && defined(SMPX_CLI_PATH)

/// End-to-end through the real binaries: a daemon process serves a
/// projection to the real CLI in --connect mode, differentially compared
/// against the same CLI offline.
TEST(SmpxdProcessTest, CliConnectMatchesOfflineCli) {
  const Fixture& f = SharedFixture();
  const std::string dir = ::testing::TempDir();
  const std::string sock = dir + "/smpxd_e2e.sock";
  const std::string dtd_path = dir + "/smpxd_e2e.dtd";
  const std::string ready = dir + "/smpxd_e2e_ready.txt";
  const std::string pidf = dir + "/smpxd_e2e_pid.txt";
  ASSERT_TRUE(WriteStringToFile(dtd_path, kDtdText).ok());

  std::string start = std::string("\"") + SMPXD_PATH + "\" --socket \"" +
                      sock + "\" > \"" + ready + "\" & echo $! > \"" + pidf +
                      "\"";
  ASSERT_EQ(std::system(start.c_str()), 0);
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    auto line = ReadFileToString(ready);
    up = line.ok() && line->find("smpxd ready") != std::string::npos;
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(up) << "daemon never printed the ready line";

  const std::string offline = dir + "/smpxd_e2e_offline.xml";
  const std::string viasrv = dir + "/smpxd_e2e_server.xml";
  std::string base = std::string("\"") + SMPX_CLI_PATH + "\" --dtd \"" +
                     dtd_path + "\" --paths \"" + kPaths + "\" ";
  ASSERT_EQ(std::system(
                (base + "\"" + f.doc_path + "\" \"" + offline + "\"").c_str()),
            0);
  ASSERT_EQ(std::system((base + "--connect \"unix:" + sock + "\" \"" +
                         f.doc_path + "\" \"" + viasrv + "\"")
                            .c_str()),
            0);
  auto a = ReadFileToString(offline);
  auto b = ReadFileToString(viasrv);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  std::system(("kill $(cat \"" + pidf + "\") 2>/dev/null").c_str());
  for (const auto& p : {sock, ready, pidf, offline, viasrv, dtd_path}) {
    std::remove(p.c_str());
  }
}

#endif  // SMPXD_PATH && SMPX_CLI_PATH

}  // namespace
}  // namespace smpx::server
