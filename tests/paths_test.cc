// Tests for projection paths: parsing, branch matching, prefix closure,
// and Definition 3 relevance (C1/C2/C3), including the paper's Example 6.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "paths/path_nfa.h"
#include "paths/projection_path.h"
#include "paths/relevance.h"

namespace smpx::paths {
namespace {

ProjectionPath P(std::string_view text) {
  auto r = ProjectionPath::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : ProjectionPath();
}

std::vector<std::string> B(std::initializer_list<const char*> labels) {
  return std::vector<std::string>(labels.begin(), labels.end());
}

TEST(ProjectionPathTest, ParsesBasicForms) {
  ProjectionPath p = P("/site/regions/australia");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].name, "site");
  EXPECT_EQ(p.steps[0].axis, PathStep::Axis::kChild);
  EXPECT_FALSE(p.descendants);

  p = P("//australia//description#");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, PathStep::Axis::kDescendant);
  EXPECT_EQ(p.steps[1].axis, PathStep::Axis::kDescendant);
  EXPECT_TRUE(p.descendants);

  p = P("/*");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_TRUE(p.steps[0].wildcard);

  p = P("/");
  EXPECT_TRUE(p.steps.empty());

  p = P("/a/b#@");
  EXPECT_TRUE(p.descendants);
  EXPECT_TRUE(p.attributes);
}

TEST(ProjectionPathTest, RejectsMalformed) {
  EXPECT_FALSE(ProjectionPath::Parse("").ok());
  EXPECT_FALSE(ProjectionPath::Parse("a/b").ok());
  EXPECT_FALSE(ProjectionPath::Parse("/a/").ok());
  EXPECT_FALSE(ProjectionPath::Parse("//").ok());
  EXPECT_FALSE(ProjectionPath::Parse("/a[1]").ok());
}

TEST(ProjectionPathTest, ToStringRoundTrips) {
  for (const char* text : {"/", "/*", "/a/b", "//a//b#", "/a//b", "/x#@",
                           "//item/name"}) {
    ProjectionPath p = P(text);
    EXPECT_EQ(P(p.ToString()).ToString(), p.ToString()) << text;
  }
}

TEST(ProjectionPathTest, ParseList) {
  auto r = ProjectionPath::ParseList("/a/b#\n  //c \n\n/* ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(PathNfaTest, ChildSteps) {
  ProjectionPath p = P("/a/b");
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "b"})));
  EXPECT_FALSE(PathMatchesBranch(p, B({"a"})));
  EXPECT_FALSE(PathMatchesBranch(p, B({"a", "b", "c"})));
  EXPECT_FALSE(PathMatchesBranch(p, B({"a", "c"})));
  EXPECT_FALSE(PathMatchesBranch(p, B({"x", "b"})));
}

TEST(PathNfaTest, DescendantSteps) {
  ProjectionPath p = P("//b");
  EXPECT_TRUE(PathMatchesBranch(p, B({"b"})));
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "b"})));
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "c", "b"})));
  EXPECT_FALSE(PathMatchesBranch(p, B({"b", "c"})));

  p = P("/a//d");
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "d"})));
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "x", "y", "d"})));
  EXPECT_FALSE(PathMatchesBranch(p, B({"b", "x", "d"})));
}

TEST(PathNfaTest, WildcardSteps) {
  EXPECT_TRUE(PathMatchesBranch(P("/*"), B({"anything"})));
  EXPECT_FALSE(PathMatchesBranch(P("/*"), B({"a", "b"})));
  EXPECT_TRUE(PathMatchesBranch(P("/a/*/c"), B({"a", "b", "c"})));
  EXPECT_TRUE(PathMatchesBranch(P("//*"), B({"a", "b", "c"})));
}

TEST(PathNfaTest, EmptyPathMatchesDocumentNodeOnly) {
  EXPECT_TRUE(PathMatchesBranch(P("/"), {}));
  EXPECT_FALSE(PathMatchesBranch(P("/"), B({"a"})));
}

TEST(PathNfaTest, RepeatedLabelsWithDescendant) {
  ProjectionPath p = P("//a//a");
  EXPECT_FALSE(PathMatchesBranch(p, B({"a"})));
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "a"})));
  EXPECT_TRUE(PathMatchesBranch(p, B({"a", "x", "a"})));
}

TEST(PrefixClosureTest, AddsAllStepPrefixes) {
  // Example 6: P = {/*, /a/b#, //b#} yields
  // P+ = {/, /a, /*, /a/b#, //b#}.
  std::vector<ProjectionPath> paths = {P("/*"), P("/a/b#"), P("//b#")};
  std::vector<ProjectionPath> closure = PrefixClosure(paths);
  std::vector<std::string> rendered;
  for (const ProjectionPath& p : closure) rendered.push_back(p.ToString());
  EXPECT_EQ(closure.size(), 5u);
  EXPECT_NE(std::find(rendered.begin(), rendered.end(), "/"), rendered.end());
  EXPECT_NE(std::find(rendered.begin(), rendered.end(), "/a"),
            rendered.end());
  EXPECT_NE(std::find(rendered.begin(), rendered.end(), "/a/b#"),
            rendered.end());
}

TEST(PrefixClosureTest, PrefixesDropFlags) {
  std::vector<ProjectionPath> closure = PrefixClosure({P("/a/b#@")});
  for (const ProjectionPath& p : closure) {
    if (p.steps.size() < 2) {
      EXPECT_FALSE(p.descendants) << p.ToString();
      EXPECT_FALSE(p.attributes) << p.ToString();
    }
  }
}

// --- Relevance: the paper's Example 6 -------------------------------------
// Query <x>{/a/b,//b}</x>, P = {/*, /a/b#, //b#}, document
// <a><c><b>T</b></c></a>: ALL tokens are relevant; in particular the c-tags
// are relevant only via C3.

class Example6Test : public ::testing::Test {
 protected:
  Example6Test()
      : analyzer_({P("/*"), P("/a/b#"), P("//b#")}, {"a", "b", "c"}) {}
  RelevanceAnalyzer analyzer_;
};

TEST_F(Example6Test, ATagsRelevantViaC1) {
  BranchRelevance r = analyzer_.Analyze(B({"a"}));
  EXPECT_TRUE(r.c1) << "branch <a/> matched by prefix path /a and by /*";
  EXPECT_TRUE(r.relevant());
}

TEST_F(Example6Test, BTagsRelevantViaC1WithHash) {
  BranchRelevance r = analyzer_.Analyze(B({"a", "c", "b"}));
  EXPECT_TRUE(r.c1) << "matched by //b#";
  EXPECT_TRUE(r.leaf_hash) << "//b# is #-flagged";
}

TEST_F(Example6Test, TextRelevantViaC2) {
  EXPECT_TRUE(analyzer_.TextRelevant(B({"a", "c", "b"})))
      << "text under b is covered by //b#";
  EXPECT_FALSE(analyzer_.TextRelevant(B({"a", "c"})))
      << "text directly under c is not covered";
}

TEST_F(Example6Test, CTagsRelevantViaC3) {
  BranchRelevance r = analyzer_.Analyze(B({"a", "c"}));
  EXPECT_FALSE(r.c1);
  EXPECT_FALSE(r.c2);
  EXPECT_TRUE(r.c3) << "substituting t=b, /a/b (child form) and //b# "
                       "(descendant form) both match <a><b/></a>";
  EXPECT_TRUE(r.relevant());
}

TEST_F(Example6Test, DescendantsOfBKeptViaC2) {
  BranchRelevance r = analyzer_.Analyze(B({"a", "c", "b", "x"}));
  EXPECT_TRUE(r.c2) << "descendants of b are kept by //b#";
  EXPECT_FALSE(r.c1) << "nothing in P+ matches the x leaf itself";
}

TEST_F(Example6Test, WildcardRootMatchesAnyLabel) {
  // "/*" is in P, so any root label is C1-relevant.
  BranchRelevance r = analyzer_.Analyze(B({"x"}));
  EXPECT_TRUE(r.c1);
}

TEST_F(Example6Test, SiblingOfBRelevantViaC3Shielding) {
  // An x-child of a could shield a b; C3 keeps it (same reasoning as for c).
  BranchRelevance r = analyzer_.Analyze(B({"a", "x"}));
  EXPECT_FALSE(r.c1);
  EXPECT_FALSE(r.c2);
  EXPECT_TRUE(r.c3);
}

TEST(RelevanceTest, WithoutDescendantFormNoC3) {
  // P = {/*, /a/b#}: no descendant-form path, so c is NOT relevant (matches
  // the paper's Example 11 where only a- and b-states are selected).
  RelevanceAnalyzer analyzer({P("/*"), P("/a/b#")}, {"a", "b", "c"});
  BranchRelevance r = analyzer.Analyze(B({"a", "c"}));
  EXPECT_FALSE(r.relevant());
}

TEST(RelevanceTest, DocumentNodeAlwaysRelevant) {
  RelevanceAnalyzer analyzer({P("/a/b")}, {"a", "b"});
  EXPECT_TRUE(analyzer.Analyze({}).relevant());
}

TEST(RelevanceTest, HashOnAncestorCoversDescendants) {
  RelevanceAnalyzer analyzer({P("//c#")}, {"a", "b", "c"});
  BranchRelevance r = analyzer.Analyze(B({"a", "c", "b"}));
  EXPECT_TRUE(r.c2);
  EXPECT_TRUE(r.relevant());
  EXPECT_FALSE(r.leaf_hash) << "b itself is not matched by //c#";
}

TEST(RelevanceTest, AttrFlagSurfacesOnLeaf) {
  RelevanceAnalyzer analyzer({P("/a/b@")}, {"a", "b"});
  EXPECT_TRUE(analyzer.Analyze(B({"a", "b"})).leaf_attrs);
  EXPECT_FALSE(analyzer.Analyze(B({"a"})).leaf_attrs);
}

TEST(RelevanceTest, C3RequiresBothForms) {
  // Only a child-form path: /a/b alone cannot trigger C3 on <a><x/></a>.
  RelevanceAnalyzer child_only({P("/a/b")}, {"a", "b", "x"});
  BranchRelevance r = child_only.Analyze(B({"a", "x"}));
  EXPECT_FALSE(r.c1);
  EXPECT_FALSE(r.c3);

  // Only a descendant-form path: //b alone cannot either.
  RelevanceAnalyzer desc_only({P("//b")}, {"a", "b", "x"});
  r = desc_only.Analyze(B({"a", "x"}));
  EXPECT_FALSE(r.c1);
  EXPECT_FALSE(r.c3);

  // Both forms together do.
  RelevanceAnalyzer with_desc({P("/a/b"), P("//b")}, {"a", "b", "x"});
  r = with_desc.Analyze(B({"a", "x"}));
  EXPECT_TRUE(r.c3);
}

}  // namespace
}  // namespace smpx::paths
