// Determinism tests for the resumable PrefilterSession and the parallel
// sharded/batch execution layer: chunked, sharded, and batched runs must be
// byte-identical to the serial engine, with merged RunStats totals
// matching, across thread counts, odd shard boundaries (mid-tag, inside
// CDATA/comments), tiny windows, and empty shards.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/prefilter.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::core {
namespace {

constexpr char kPaperDtd[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";

Prefilter Compile(std::string_view dtd_text, std::string_view paths,
                  const CompileOptions& opts = {}) {
  auto dtd = dtd::Dtd::Parse(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto parsed = paths::ProjectionPath::ParseList(paths);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto pf = Prefilter::Compile(std::move(*dtd), *parsed, opts);
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

std::string SerialRun(const Prefilter& pf, std::string_view doc,
                      RunStats* stats = nullptr,
                      const EngineOptions& opts = {}) {
  auto out = pf.RunOnBuffer(doc, stats, opts);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::string();
}

/// Runs a push-mode session over `doc` in chunks of `chunk_len` bytes.
std::string ChunkedRun(const Prefilter& pf, std::string_view doc,
                       size_t chunk_len, RunStats* stats = nullptr,
                       const EngineOptions& opts = {}) {
  StringSink sink;
  RunStats local;
  PrefilterSession session(pf.tables(), &sink,
                           stats != nullptr ? stats : &local, opts);
  for (size_t off = 0; off < doc.size(); off += chunk_len) {
    Status s = session.Resume(doc.substr(off, chunk_len));
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) return std::string();
  }
  Status s = session.Finish();
  EXPECT_TRUE(s.ok()) << s.ToString();
  return sink.TakeString();
}

// --- PrefilterSession: chunked push mode ----------------------------------

TEST(SessionTest, ChunkedRunsMatchSerialAcrossChunkSizes) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  const std::string doc =
      "<?xml version=\"1.0\"?>\n<!-- prolog comment -->\n"
      "<a><b>one</b><c><b>shielded</b></c><b attr=\"x>y\">two</b>"
      "<b/><c><b/></c></a>";
  RunStats serial_stats;
  std::string serial = SerialRun(pf, doc, &serial_stats);
  for (size_t chunk : {1u, 2u, 3u, 7u, 16u, 64u, 4096u}) {
    SCOPED_TRACE(chunk);
    RunStats stats;
    EXPECT_EQ(ChunkedRun(pf, doc, chunk, &stats), serial);
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.false_matches, serial_stats.false_matches);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
    EXPECT_EQ(stats.input_bytes, doc.size());
  }
}

TEST(SessionTest, ChunkedDoctypeWithQuotedGt) {
  // The memchr DOCTYPE scan must not terminate on a '>' inside a quoted
  // entity value, in any chunking.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  const std::string doc =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ENTITY e \"x>y\">"
      " <!ENTITY f 'p>q'> ]>\n<a><b>k</b></a>";
  std::string serial = SerialRun(pf, doc);
  EXPECT_EQ(serial, "<a><b>k</b></a>");
  for (size_t chunk : {1u, 5u, 33u}) {
    SCOPED_TRACE(chunk);
    EXPECT_EQ(ChunkedRun(pf, doc, chunk), serial);
  }
}

TEST(SessionTest, TinyWindowChunkedRun) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string big_text(5000, 'x');
  const std::string doc = "<a><b>" + big_text + "</b><c><b>n</b></c></a>";
  EngineOptions opts;
  opts.window_capacity = 64;
  std::string serial = SerialRun(pf, doc, nullptr, opts);
  for (size_t chunk : {3u, 17u, 256u}) {
    SCOPED_TRACE(chunk);
    EXPECT_EQ(ChunkedRun(pf, doc, chunk, nullptr, opts), serial);
  }
}

TEST(SessionTest, InvalidConstructionIsInert) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  // Empty tables: clean error, no crash.
  RuntimeTables empty;
  StringSink sink1;
  RunStats stats1;
  PrefilterSession bad1(empty, &sink1, &stats1);
  EXPECT_FALSE(bad1.finished());
  EXPECT_EQ(bad1.Resume("<a/>").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad1.Finish().code(), StatusCode::kInvalidArgument);
  // Out-of-range checkpoint state: same.
  SessionCheckpoint cp;
  cp.state = 999;
  StringSink sink2;
  RunStats stats2;
  PrefilterSession bad2(pf.tables(), &sink2, &stats2, {}, &cp);
  EXPECT_FALSE(bad2.finished());
  EXPECT_EQ(bad2.Resume("<a/>").code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, FinishOnTruncatedDocumentFails) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  StringSink sink;
  RunStats stats;
  PrefilterSession session(pf.tables(), &sink, &stats);
  ASSERT_TRUE(session.Resume("<a><b>never").ok());
  EXPECT_FALSE(session.finished());
  Status s = session.Finish();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(SessionTest, CancellationTokenAbortsAtASafePointAndIsSticky) {
  // The cooperative cancellation token (EngineOptions::cancel) is polled at
  // session safe points: a token raised between chunks makes the next
  // Resume return kCancelled, and the session stays dead afterwards. A
  // token that is never raised must not perturb the run.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc = "<a>";
  for (int i = 0; i < 60; ++i) doc += "<b>payload</b><c><b>n</b></c>";
  doc += "</a>";

  std::atomic<bool> cancel{false};
  EngineOptions opts;
  opts.cancel = &cancel;
  EXPECT_EQ(ChunkedRun(pf, doc, 97, nullptr, opts), SerialRun(pf, doc));

  StringSink sink;
  RunStats stats;
  PrefilterSession session(pf.tables(), &sink, &stats, opts);
  ASSERT_TRUE(session.Resume(std::string_view(doc).substr(0, 100)).ok());
  cancel.store(true);
  EXPECT_EQ(session.Resume(std::string_view(doc).substr(100)).code(),
            StatusCode::kCancelled);
  // Sticky: a cancelled session never resumes, even if the token drops.
  cancel.store(false);
  EXPECT_EQ(session.Resume("<b>more</b>").code(), StatusCode::kCancelled);
  EXPECT_EQ(session.Finish().code(), StatusCode::kCancelled);
  EXPECT_FALSE(session.finished());
}

TEST(SessionTest, MidPrologCheckpointHandoffStaysByteIdentical) {
  // A chunk ending inside the DOCTYPE suspends mid-prolog; a successor
  // session built from the checkpoint must resume prolog scanning (not
  // treat the internal subset -- here holding decoy vocabulary tags -- as
  // document content). Regression: prolog_done/jump_pending now travel in
  // the checkpoint.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  const std::string doc =
      "<!DOCTYPE a [ <!-- <a><b>fake</b></a> --> ]>\n<a><b>real</b></a>";
  std::string serial = SerialRun(pf, doc);
  EXPECT_EQ(serial, "<a><b>real</b></a>");
  for (size_t cut : {5u, 20u, 30u, 43u}) {  // all inside/at the DOCTYPE
    SCOPED_TRACE(cut);
    StringSink sink1;
    RunStats stats1;
    PrefilterSession first(pf.tables(), &sink1, &stats1);
    ASSERT_TRUE(first.Resume(std::string_view(doc).substr(0, cut)).ok());
    ASSERT_FALSE(first.finished());
    SessionCheckpoint cp = first.checkpoint();
    StringSink sink2;
    RunStats stats2;
    PrefilterSession second(pf.tables(), &sink2, &stats2, {}, &cp);
    ASSERT_TRUE(
        second
            .Resume(std::string_view(doc).substr(
                static_cast<size_t>(cp.cursor)))
            .ok());
    ASSERT_TRUE(second.Finish().ok());
    EXPECT_EQ(sink1.str() + sink2.str(), serial);
  }
}

TEST(SessionTest, CheckpointHandoffContinuesByteIdentically) {
  // Split a document at an arbitrary top-level point: run the prefix in one
  // session, hand its checkpoint to a second session over the suffix; the
  // concatenated output must equal the serial run.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  const std::string doc =
      "<a><b>one</b><c><b>s</b></c><b>two</b><b>three</b><c><b/></c></a>";
  std::string serial = SerialRun(pf, doc);

  // Boundary at the '<' of "<b>two" (a top-level child of <a>).
  size_t bound = doc.find("<b>two");
  ASSERT_NE(bound, std::string::npos);

  StringSink sink1;
  RunStats stats1;
  PrefilterSession first(pf.tables(), &sink1, &stats1);
  ASSERT_TRUE(first.Resume(std::string_view(doc).substr(0, bound)).ok());
  ASSERT_FALSE(first.finished());
  ASSERT_TRUE(first.drained_cleanly());
  SessionCheckpoint cp = first.checkpoint();
  EXPECT_EQ(cp.copy_depth, 0);
  EXPECT_EQ(cp.nesting_depth, 0u);

  // The successor starts exactly at the boundary in the carried state.
  cp.cursor = bound;
  StringSink sink2;
  RunStats stats2;
  PrefilterSession second(pf.tables(), &sink2, &stats2, {}, &cp);
  ASSERT_TRUE(second.Resume(std::string_view(doc).substr(bound)).ok());
  ASSERT_TRUE(second.Finish().ok());
  EXPECT_TRUE(second.finished());

  EXPECT_EQ(sink1.str() + sink2.str(), serial);
}

TEST(SessionTest, ExhaustiveSuspendResumeAtEveryByteOffset) {
  // For a corpus of small documents covering every construct the session
  // can suspend inside (prolog, DOCTYPE subset, comments, CDATA, PIs,
  // quoted attributes, bachelor tags, opaque recursion), suspend at EVERY
  // byte offset and resume in a fresh session built from the checkpoint:
  // the concatenated output must be byte-identical to the serial run.
  struct Case {
    const char* dtd;
    const char* paths;
    std::string doc;
    bool recursion = false;
  };
  std::vector<Case> corpus;
  corpus.push_back(
      {kPaperDtd, "/a/b#",
       "<?xml version=\"1.0\"?><!-- lead --><a><b>one</b>"
       "<c><b>shielded</b></c><b at=\"x>y\">two</b><b/><c><b/></c></a>"});
  corpus.push_back(
      {kPaperDtd, "/a/b#",
       "<!DOCTYPE a [ <!-- <a><b>fake</b></a> --> <!ENTITY e \"q>r\"> ]>"
       "<a><![CDATA[ <b>cdata</b> ]]><b>real</b><?pi <b>no</b> ?></a>"});
  corpus.push_back(
      {"<!DOCTYPE a [ <!ELEMENT a (item*)>"
       " <!ELEMENT item (name, tree)> <!ELEMENT name (#PCDATA)>"
       " <!ELEMENT tree (leaf | tree)*> <!ELEMENT leaf (#PCDATA)> ]>",
       "//name#",
       "<a><item><name>n</name><tree><tree><leaf>d</leaf></tree>"
       "<leaf>x</leaf></tree></item><item><name>m</name><tree/>"
       "</item></a>",
       /*recursion=*/true});
  for (size_t ci = 0; ci < corpus.size(); ++ci) {
    SCOPED_TRACE(ci);
    const Case& c = corpus[ci];
    CompileOptions copts;
    copts.allow_recursion = c.recursion;
    Prefilter pf = Compile(c.dtd, c.paths, copts);
    std::string serial = SerialRun(pf, c.doc);
    for (size_t cut = 0; cut <= c.doc.size(); ++cut) {
      SCOPED_TRACE(cut);
      StringSink sink1;
      RunStats stats1;
      PrefilterSession first(pf.tables(), &sink1, &stats1);
      ASSERT_TRUE(
          first.Resume(std::string_view(c.doc).substr(0, cut)).ok());
      SessionCheckpoint cp = first.checkpoint();
      StringSink sink2;
      RunStats stats2;
      PrefilterSession second(pf.tables(), &sink2, &stats2, {}, &cp);
      ASSERT_TRUE(second
                      .Resume(std::string_view(c.doc).substr(
                          static_cast<size_t>(cp.feed_begin())))
                      .ok());
      ASSERT_TRUE(second.Finish().ok());
      EXPECT_EQ(sink1.str() + sink2.str(), serial);
    }
  }
}

// --- Sharder: boundary scan -----------------------------------------------

TEST(SharderTest, BoundariesAreTopLevelElementStarts) {
  // Root <a>, top-level children alternate b and c; comments and CDATA
  // containing fake tags must not attract or distort boundaries.
  std::string doc = "<a>";
  for (int i = 0; i < 40; ++i) {
    doc += "<b>text</b>";
    doc += "<c><b>nested</b><!-- <b>fake</b> --></c>";
  }
  doc += "</a>";
  std::vector<uint64_t> bounds =
      parallel::FindTopLevelBoundaries(doc, 3);
  ASSERT_FALSE(bounds.empty());
  EXPECT_LE(bounds.size(), 3u);
  for (uint64_t b : bounds) {
    ASSERT_LT(b + 1, doc.size());
    EXPECT_EQ(doc[static_cast<size_t>(b)], '<');
    // Never a closing tag, never inside a comment: must open b or c.
    EXPECT_TRUE(doc[static_cast<size_t>(b) + 1] == 'b' ||
                doc[static_cast<size_t>(b) + 1] == 'c')
        << "boundary at " << b;
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(SharderTest, BoundariesSkipCdataAndComments) {
  // A document whose midsection -- where even split targets land -- is one
  // huge comment plus CDATA full of fake top-level tags.
  std::string fake;
  for (int i = 0; i < 200; ++i) fake += "<b>x</b>";
  std::string doc = "<a><b>start</b><c><![CDATA[" + fake + "]]>" +
                    "<!-- " + fake + " --><b>in</b></c><b>end</b></a>";
  std::vector<uint64_t> bounds =
      parallel::FindTopLevelBoundaries(doc, 7);
  for (uint64_t b : bounds) {
    // Only the real top-level children qualify.
    size_t p = static_cast<size_t>(b);
    bool is_c = doc.compare(p, 3, "<c>") == 0;
    bool is_end = doc.compare(p, 11, "<b>end</b>") == 0 ||
                  doc.compare(p, 3, "<b>") == 0;
    EXPECT_TRUE(is_c || is_end) << "boundary at " << b << ": "
                                << doc.substr(p, 12);
  }
}

TEST(SharderTest, TinyDocumentsYieldFewOrNoBoundaries) {
  EXPECT_TRUE(parallel::FindTopLevelBoundaries("", 4).empty());
  EXPECT_TRUE(parallel::FindTopLevelBoundaries("<a/>", 4).empty());
  // A childless root has no depth-1 element starts at all.
  EXPECT_TRUE(parallel::FindTopLevelBoundaries("<a>text only</a>", 4).empty());
  // One top-level child: at most one (valid) boundary, at that child.
  std::vector<uint64_t> b =
      parallel::FindTopLevelBoundaries("<a><b/></a>", 4);
  ASSERT_LE(b.size(), 1u);
  if (!b.empty()) {
    EXPECT_EQ(b[0], 3u);
  }
}

TEST(SharderTest, ParallelBoundariesMatchSerialScan) {
  // The region-parallel scanner must select exactly the boundaries of the
  // sequential scan on well-formed documents, for any split count and pool
  // size (including constructs straddling region edges).
  std::vector<std::string> docs;
  {
    std::string doc = "<a>";
    for (int i = 0; i < 60; ++i) {
      doc += "<b>text</b>";
      doc += "<c><b>nested</b><!-- <b>fake</b> --></c>";
    }
    doc += "</a>";
    docs.push_back(doc);
  }
  {
    std::string fake;
    for (int i = 0; i < 300; ++i) fake += "<b>x</b>";
    docs.push_back("<a><b>start</b><c><![CDATA[" + fake + "]]>" +
                   "<!-- " + fake + " --><b>in</b></c><b>end</b></a>");
  }
  docs.push_back("<?xml version=\"1.0\"?><!DOCTYPE a [ <!ENTITY g \"x>y\">"
                 " ]><a><b at=\"q>r\">one</b><b/><c>two</c></a>");
  docs.push_back("");
  docs.push_back("<a/>");
  docs.push_back("<a>text only</a>");
  for (size_t di = 0; di < docs.size(); ++di) {
    SCOPED_TRACE(di);
    for (int pool_threads : {1, 2, 4}) {
      parallel::ThreadPool pool(pool_threads);
      for (size_t splits : {1u, 2u, 3u, 7u, 16u}) {
        SCOPED_TRACE(splits);
        EXPECT_EQ(
            parallel::FindTopLevelBoundariesParallel(docs[di], splits,
                                                     &pool),
            parallel::FindTopLevelBoundaries(docs[di], splits));
      }
    }
  }
}

TEST(SharderTest, ParallelScanEarlyExitsPastTheLastBoundary) {
  // Once every split target is covered, the region-parallel scan must stop
  // -- the tail region past the last chosen boundary is scanned only up to
  // that boundary, like the serial scanner, not to the document end.
  std::string doc = "<a>";
  for (int i = 0; i < 500; ++i) {
    doc += "<b>some payload text for bulk " + std::to_string(i) + "</b>";
  }
  doc += "</a>";
  parallel::ThreadPool pool(3);
  for (size_t splits : {1u, 2u, 4u}) {
    SCOPED_TRACE(splits);
    uint64_t scanned = 0;
    std::vector<uint64_t> par = parallel::FindTopLevelBoundariesParallel(
        doc, splits, &pool, &scanned);
    EXPECT_EQ(par, parallel::FindTopLevelBoundaries(doc, splits));
    ASSERT_EQ(par.size(), splits);  // dense children: every target is met
    // The bytes consumed stay close to the last boundary; in particular
    // the tail past it was skipped (at least ~1/(splits+1) of the doc).
    EXPECT_LT(scanned, doc.size() - doc.size() / (splits + 2))
        << "tail region was scanned to the end";
  }
  // A 1-worker pool delegates to the serial scan and inherits its early
  // exit.
  parallel::ThreadPool serial_pool(1);
  uint64_t scanned = 0;
  std::vector<uint64_t> par = parallel::FindTopLevelBoundariesParallel(
      doc, 2, &serial_pool, &scanned);
  EXPECT_EQ(par, parallel::FindTopLevelBoundaries(doc, 2));
  EXPECT_LT(scanned, doc.size());
}

// --- Static boundary-state analysis ---------------------------------------

TEST(BoundaryStatesTest, StarRootEnumeratesBoundaryPhases) {
  // (b|c)* root: a boundary can follow <a>, </b>, or </c> -- three DFA
  // states that differ only in their entry action, so the sharder
  // collapses them into ONE speculative behavior class (asserted via the
  // ShardReport in FullySpeculativeWaveHasNoSerialPrefix).
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  ASSERT_EQ(pf.tables().boundary_states.size(), 3u);
  for (int q : pf.tables().boundary_states) {
    ASSERT_GE(q, 0);
    ASSERT_LT(static_cast<size_t>(q), pf.tables().states.size());
    EXPECT_FALSE(pf.tables().states[static_cast<size_t>(q)].is_final);
  }
}

TEST(BoundaryStatesTest, RootCopyCandidatesCarryCopyDepth) {
  // A root-copying query (/a#) turns the whole document into one copy
  // region, so EVERY top-level boundary sits at copy depth 1. The analysis
  // must say so -- (state, depth) pairs, depths parallel to the states --
  // while plain child queries stay all-depth-0.
  Prefilter deep = Compile(kPaperDtd, "/a#");
  ASSERT_EQ(deep.tables().boundary_copy_depths.size(),
            deep.tables().boundary_states.size());
  ASSERT_FALSE(deep.tables().boundary_states.empty());
  for (int d : deep.tables().boundary_copy_depths) EXPECT_EQ(d, 1);

  Prefilter shallow = Compile(kPaperDtd, "/a/b#");
  ASSERT_EQ(shallow.tables().boundary_copy_depths.size(),
            shallow.tables().boundary_states.size());
  for (int d : shallow.tables().boundary_copy_depths) EXPECT_EQ(d, 0);
}

TEST(BoundaryStatesTest, OrderedRootEnumeratesAllPhases) {
  // (x, y, z) root: the run is in a different state before x, y, and z, so
  // the analysis must report several candidates (and each boundary's true
  // state must be among them -- covered by the fuzz property suite).
  const char dtd[] =
      "<!DOCTYPE r [ <!ELEMENT r (x, y, z)> <!ELEMENT x (b*)>"
      " <!ELEMENT y (b*)> <!ELEMENT z (b*)> <!ELEMENT b (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/r/y#");
  EXPECT_GE(pf.tables().boundary_states.size(), 2u);
  for (int q : pf.tables().boundary_states) {
    ASSERT_GE(q, 0);
    ASSERT_LT(static_cast<size_t>(q), pf.tables().states.size());
  }
}

TEST(BoundaryStatesTest, OpaqueRecursionCandidatesContainTrueStates) {
  // Recursive (opaque) top-level content: the analysis models the region
  // nondeterministically, so the candidate set must still contain the true
  // entry state at every top-level boundary.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (item*)>"
      " <!ELEMENT item (name, tree)> <!ELEMENT name (#PCDATA)>"
      " <!ELEMENT tree (leaf | tree)*> <!ELEMENT leaf (#PCDATA)> ]>";
  CompileOptions copts;
  copts.allow_recursion = true;
  Prefilter pf = Compile(dtd, "//name#", copts);
  const std::vector<int>& candidates = pf.tables().boundary_states;
  ASSERT_FALSE(candidates.empty());
  std::string doc = "<a>";
  std::vector<size_t> boundaries;
  for (int i = 0; i < 12; ++i) {
    boundaries.push_back(doc.size());
    doc += "<item><name>n" + std::to_string(i) + "</name>"
           "<tree><tree><leaf>d</leaf><tree/></tree><leaf>x</leaf></tree>"
           "</item>";
  }
  doc += "</a>";
  for (size_t b : boundaries) {
    SCOPED_TRACE(b);
    StringSink sink;
    RunStats stats;
    PrefilterSession session(pf.tables(), &sink, &stats);
    ASSERT_TRUE(session.Resume(std::string_view(doc).substr(0, b)).ok());
    int state = session.checkpoint().state;
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), state) !=
                candidates.end())
        << "true state " << state << " missing at boundary " << b;
  }
}

TEST(BoundaryStatesTest, MapDispatchGetsTheSameAnalysis) {
  CompileOptions copts;
  copts.tables.use_map_dispatch = true;
  Prefilter legacy = Compile(kPaperDtd, "/a/b#", copts);
  Prefilter modern = Compile(kPaperDtd, "/a/b#");
  EXPECT_EQ(legacy.tables().boundary_states,
            modern.tables().boundary_states);
}

// --- Sharded execution ----------------------------------------------------

/// Asserts byte-identical output and equal semantic stat totals between the
/// serial engine and ShardedRun at several thread/shard counts.
void ExpectShardedIdentical(const Prefilter& pf, const std::string& doc,
                            const core::EngineOptions& eopts = {}) {
  RunStats serial_stats;
  std::string serial = SerialRun(pf, doc, &serial_stats, eopts);
  for (int threads : {1, 2, 4, 7}) {
    SCOPED_TRACE(threads);
    parallel::ThreadPool pool(threads);
    for (size_t shards : {static_cast<size_t>(threads), size_t{3},
                          size_t{5}}) {
      SCOPED_TRACE(shards);
      StringSink sink;
      RunStats stats;
      parallel::ShardOptions opts;
      opts.max_shards = shards;
      opts.engine = eopts;
      Status s =
          parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool, opts);
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(sink.str(), serial);
      EXPECT_EQ(stats.matches, serial_stats.matches);
      EXPECT_EQ(stats.false_matches, serial_stats.false_matches);
      EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
      EXPECT_EQ(stats.initial_jump_chars, serial_stats.initial_jump_chars);
      EXPECT_EQ(stats.states_visited, serial_stats.states_visited);
      EXPECT_EQ(stats.input_bytes, serial_stats.input_bytes);
    }
  }
}

TEST(ShardedRunTest, StarRootMatchesSerial) {
  // Star-shaped root: speculation hits on every boundary.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::string doc = "<a>";
  for (int i = 0; i < 300; ++i) {
    doc += "<b>keep " + std::to_string(i) + "</b>";
    doc += "<c><b>drop</b><b>drop2</b></c>";
  }
  doc += "</a>";
  ExpectShardedIdentical(pf, doc);
}

TEST(ShardedRunTest, OrderedRootMisspeculationStillMatchesSerial) {
  // Sequenced root content: every boundary has a distinct DFA state, so
  // speculation fails and the verification pass re-runs shards -- output
  // must still be byte-identical.
  const char dtd[] =
      "<!DOCTYPE r [ <!ELEMENT r (x, y, z)> <!ELEMENT x (b*)>"
      " <!ELEMENT y (b*)> <!ELEMENT z (b*)> <!ELEMENT b (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/r/y#");
  std::string fill;
  for (int i = 0; i < 120; ++i) fill += "<b>payload text</b>";
  std::string doc =
      "<r><x>" + fill + "</x><y>" + fill + "</y><z>" + fill + "</z></r>";
  ExpectShardedIdentical(pf, doc);
}

TEST(ShardedRunTest, CdataCommentsAndFakeTagsAcrossBoundaries) {
  // Split targets that would naively land mid-tag or inside CDATA/comment
  // regions full of vocabulary-lookalike text.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::string doc = "<a>";
  for (int i = 0; i < 50; ++i) {
    doc += "<b>text with &lt;zzz&gt; lookalikes <zzz attr=\"quoted>gt\"> "
           "and more</b>";
    doc += "<c><!-- <zzz>commented</zzz> -->plain</c>";
    doc += "<c><![CDATA[ <zzz>cdata</zzz> ]]></c>";
  }
  doc += "</a>";
  ExpectShardedIdentical(pf, doc);
}

TEST(ShardedRunTest, TinyWindowsAndEmptyShards) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  // Tiny document: more shards requested than top-level children exist.
  std::string tiny = "<a><b>x</b><c>y</c></a>";
  core::EngineOptions small;
  small.window_capacity = 64;
  ExpectShardedIdentical(pf, tiny, small);
  // Larger document through a tiny window.
  std::string doc = "<a>";
  for (int i = 0; i < 200; ++i) doc += "<b>abcdefgh</b><c>ignored</c>";
  doc += "</a>";
  ExpectShardedIdentical(pf, doc, small);
}

TEST(ShardedRunTest, OpaqueRecursionAcrossBoundaries) {
  // Recursive (opaque) regions spanning shard boundaries: the nesting
  // balance cannot be speculated, so these shards re-run -- output must
  // still match the serial engine.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (item*)>"
      " <!ELEMENT item (name, tree)> <!ELEMENT name (#PCDATA)>"
      " <!ELEMENT tree (leaf | tree)*> <!ELEMENT leaf (#PCDATA)> ]>";
  CompileOptions copts;
  copts.allow_recursion = true;
  Prefilter pf = Compile(dtd, "//name#", copts);
  std::string doc = "<a>";
  for (int i = 0; i < 80; ++i) {
    doc += "<item><name>n" + std::to_string(i) + "</name>"
           "<tree><tree><leaf>deep</leaf></tree><leaf>x</leaf></tree>"
           "</item>";
  }
  doc += "</a>";
  ExpectShardedIdentical(pf, doc);
}

TEST(ShardedRunTest, BudgetedSpillSegmentsMatchSerial) {
  // Output-buffer budgets far below the projected size force every shard
  // segment through SpillSink overflow and the ordered-commit replay; the
  // merged stream must stay byte-identical, including stats.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::string doc = "<a>";
  for (int i = 0; i < 400; ++i) {
    doc += "<b>projected payload " + std::to_string(i) + "</b>";
    doc += "<c>dropped</c>";
  }
  doc += "</a>";
  RunStats serial_stats;
  std::string serial = SerialRun(pf, doc, &serial_stats);
  ASSERT_GT(serial.size(), 4096u);
  for (size_t budget : {size_t{0}, size_t{1}, size_t{33}, size_t{4096}}) {
    SCOPED_TRACE(budget);
    parallel::ThreadPool pool(4);
    StringSink sink;
    RunStats stats;
    parallel::ShardOptions opts;
    opts.max_shards = 5;
    opts.max_buffer_bytes = budget;
    Status s =
        parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool, opts);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(sink.str(), serial);
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
    EXPECT_EQ(stats.input_bytes, serial_stats.input_bytes);
  }
}

TEST(ShardedRunTest, BudgetedRerunsWriteThroughFreshSegments) {
  // A stray closing tag desynchronizes the boundary scanner (see
  // MisplacedBoundariesRerunAndStayIdentical), so shards misspeculate and
  // re-run at the frontier -- the re-run's segment replaces the rejected
  // attempts and must survive a one-byte budget (pure spill) unchanged.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc = "<a><c><b>p</b> </stray> ";
  for (int i = 0; i < 60; ++i) doc += "<b>fake top level</b>";
  doc += "</c>";
  for (int i = 0; i < 10; ++i) doc += "<b>real</b>";
  doc += "</a>";
  std::string serial = SerialRun(pf, doc);
  parallel::ThreadPool pool(4);
  parallel::ShardOptions opts;
  opts.max_shards = 4;
  opts.max_buffer_bytes = 1;
  parallel::ShardReport report;
  StringSink sink;
  Status s = parallel::ShardedRun(pf.tables(), doc, &sink, nullptr, &pool,
                                  opts, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.str(), serial);
  EXPECT_GT(report.reruns, 0u);  // the re-run path really was exercised
}

TEST(ShardedRunTest, XmarkGeneratorDocMatchesSerial) {
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 400 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/site/people/person@ /site/people/person/name#");
  ASSERT_TRUE(paths.ok());
  auto pf = Prefilter::Compile(xmlgen::XmarkDtd(), *paths);
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  ExpectShardedIdentical(*pf, doc);
}

TEST(ShardedRunTest, MedlineGeneratorDocMatchesSerial) {
  // Star-shaped MEDLINE root: the bulk-scaling case for sharding.
  xmlgen::MedlineOptions gen;
  gen.target_bytes = 400 << 10;
  std::string doc = xmlgen::GenerateMedline(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo#");
  ASSERT_TRUE(paths.ok());
  auto pf = Prefilter::Compile(xmlgen::MedlineDtd(), *paths);
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  ExpectShardedIdentical(*pf, doc);
}

TEST(ShardedRunTest, FullySpeculativeWaveHasNoSerialPrefix) {
  // With a usable static candidate set, every shard -- including the head
  // -- runs inside the parallel wave: nothing is prefiltered on the
  // sequential path, and every speculative shard verifies on a star root.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc = "<a>";
  for (int i = 0; i < 400; ++i) {
    doc += "<b>keep " + std::to_string(i) + "</b><c><b>no</b></c>";
  }
  doc += "</a>";
  std::string serial = SerialRun(pf, doc);

  parallel::ThreadPool pool(4);
  parallel::ShardOptions opts;
  opts.max_shards = 4;
  parallel::ShardReport report;
  StringSink sink;
  RunStats stats;
  Status s = parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool,
                                  opts, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.str(), serial);
  EXPECT_EQ(report.shards, 4u);
  EXPECT_EQ(report.candidate_states, 3u);
  EXPECT_EQ(report.candidate_classes, 1u);
  EXPECT_EQ(report.speculated, 3u);
  EXPECT_EQ(report.accepted, 3u);
  EXPECT_EQ(report.reruns, 0u);
  EXPECT_EQ(report.serial_bytes, 0u);
  EXPECT_GT(report.wave_bytes, 0u);
}

TEST(ShardedRunTest, InCopyBoundariesSpeculateWithoutReruns) {
  // Deep-copy document: /a# copies the entire root subtree, so every
  // top-level boundary falls INSIDE the active copy region. These
  // hand-offs used to force a sequential re-run of every shard; with
  // (state, depth) candidates they speculate like clean ones -- zero
  // re-runs -- and the driver stitches in the copy bytes the predecessor's
  // suspension left unflushed, keeping output and stats byte-exact.
  Prefilter pf = Compile(kPaperDtd, "/a#");
  std::string doc = "<a>";
  for (int i = 0; i < 400; ++i) {
    doc += "<b>keep " + std::to_string(i) + "</b><c><b>no</b></c>";
  }
  doc += "</a>";
  RunStats serial_stats;
  std::string serial = SerialRun(pf, doc, &serial_stats);

  for (int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    parallel::ThreadPool pool(threads);
    parallel::ShardOptions opts;
    opts.max_shards = 4;
    parallel::ShardReport report;
    StringSink sink;
    RunStats stats;
    Status s = parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool,
                                    opts, &report);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(sink.str(), serial);
    EXPECT_EQ(report.shards, 4u);
    EXPECT_EQ(report.reruns, 0u);
    EXPECT_EQ(report.accepted, 3u);
    EXPECT_EQ(report.copy_handoffs, 3u);
    EXPECT_EQ(report.serial_bytes, 0u);
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
    EXPECT_EQ(stats.input_bytes, serial_stats.input_bytes);
    EXPECT_EQ(stats.states_visited, serial_stats.states_visited);
  }
}

TEST(ShardedRunTest, InCopyBoundariesUnderTinyBudgetSpillCleanly) {
  // Same deep-copy shape under a 1 KiB per-shard budget: the hand-off
  // tails interleave with spilled segment streams through the ordered
  // commit without disturbing byte identity.
  Prefilter pf = Compile(kPaperDtd, "/a#");
  std::string doc = "<a>";
  for (int i = 0; i < 600; ++i) {
    doc += "<c><b>payload " + std::to_string(i * 7) + "</b></c>";
  }
  doc += "</a>";
  std::string serial = SerialRun(pf, doc);
  parallel::ThreadPool pool(4);
  parallel::ShardOptions opts;
  opts.max_shards = 7;
  opts.max_buffer_bytes = 1 << 10;
  parallel::ShardReport report;
  StringSink sink;
  RunStats stats;
  Status s = parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool,
                                  opts, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.str(), serial);
  EXPECT_EQ(report.reruns, 0u);
  EXPECT_GT(report.copy_handoffs, 0u);
}

TEST(ShardedRunTest, EarlyKillAcrossPoolSizesStaysByteIdentical) {
  // XMark's sectioned root yields several behavior classes, so every wave
  // carries losing attempts that resolution now kills mid-flight. Across
  // pool sizes (which shift kills between the skipped-before-start and
  // cancelled-mid-run paths) the surviving output must stay byte-identical
  // to serial with full stats parity, and the work ledger must balance:
  // every speculative slot is either accepted or replaced by a rerun.
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 600 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/site/people/person@ /site/people/person/name#");
  ASSERT_TRUE(paths.ok());
  auto pfs = Prefilter::Compile(xmlgen::XmarkDtd(), *paths);
  ASSERT_TRUE(pfs.ok()) << pfs.status().ToString();
  const Prefilter& pf = *pfs;
  RunStats serial_stats;
  std::string serial = SerialRun(pf, doc, &serial_stats);
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    parallel::ThreadPool pool(threads);
    parallel::ShardOptions opts;
    opts.max_shards = 8;
    parallel::ShardReport report;
    StringSink sink;
    RunStats stats;
    Status s = parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool,
                                    opts, &report);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(sink.str(), serial);
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
    EXPECT_EQ(stats.states_visited, serial_stats.states_visited);
    EXPECT_EQ(stats.input_bytes, serial_stats.input_bytes);
    EXPECT_GE(report.candidate_classes, 2u);
    EXPECT_EQ(report.accepted + report.reruns, report.speculated);
  }
}

TEST(ShardedRunTest, LosingAttemptsAreKilledNotRun) {
  // Park the only worker on a sleeper task: the resolving thread steals
  // each segment's accepted attempt inline and marks the losers long
  // before the worker can touch them. Whether the worker wakes to find
  // them marked (skipped before start) or mid-run (cancelled at a safe
  // point), losers must never be completed for nothing -- the report's
  // killed counter proves the reclaim happened.
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 2 << 20;
  std::string doc = xmlgen::GenerateXmark(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/site/people/person@ /site/people/person/name#");
  ASSERT_TRUE(paths.ok());
  auto pfs = Prefilter::Compile(xmlgen::XmarkDtd(), *paths);
  ASSERT_TRUE(pfs.ok()) << pfs.status().ToString();
  const Prefilter& pf = *pfs;
  std::string serial = SerialRun(pf, doc);
  parallel::ThreadPool pool(1);
  pool.Submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  parallel::ShardOptions opts;
  opts.max_shards = 8;
  parallel::ShardReport report;
  StringSink sink;
  Status s = parallel::ShardedRun(pf.tables(), doc, &sink, nullptr, &pool,
                                  opts, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.str(), serial);
  ASSERT_GE(report.candidate_classes, 2u);
  ASSERT_GT(report.speculated, 0u);
  // At least one loser per resolved segment existed; with the resolver
  // ahead of a single worker, some of them must have been reclaimed.
  EXPECT_GT(report.killed, 0u);
  // Killed attempts never contribute accepted slots.
  EXPECT_EQ(report.accepted + report.reruns, report.speculated);
}

TEST(ShardedRunTest, MisplacedBoundariesRerunAndStayIdentical) {
  // A stray closing tag inside c's (DTD-invalid) content desynchronizes
  // the structural scanner's depth tracking, so split candidates land on
  // nested elements. Speculation then mismatches, the verification pass
  // re-runs those shards, and the output must still equal the serial run.
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc = "<a><c><b>p</b> </stray> ";
  for (int i = 0; i < 60; ++i) doc += "<b>fake top level</b>";
  doc += "</c>";
  for (int i = 0; i < 10; ++i) doc += "<b>real</b>";
  doc += "</a>";
  std::string serial = SerialRun(pf, doc);

  parallel::ThreadPool pool(4);
  parallel::ShardOptions opts;
  opts.max_shards = 4;
  parallel::ShardReport report;
  StringSink sink;
  RunStats stats;
  Status s = parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool,
                                  opts, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.str(), serial);
  ASSERT_GT(report.shards, 1u);
  EXPECT_GE(report.reruns, 1u);
  EXPECT_EQ(report.accepted + report.reruns, report.speculated);
  EXPECT_GT(report.serial_bytes, 0u);
}

TEST(ShardedRunTest, TruncatedDocumentFailsLikeSerial) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b)*> <!ELEMENT b (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::string doc = "<a>";
  for (int i = 0; i < 50; ++i) doc += "<b>x</b>";
  // No closing </a>.
  MemoryInputStream in(doc);
  StringSink serial_sink;
  Status serial = pf.Run(&in, &serial_sink);
  ASSERT_FALSE(serial.ok());

  parallel::ThreadPool pool(4);
  StringSink sink;
  RunStats stats;
  Status sharded =
      parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool, {});
  EXPECT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.code(), serial.code());
}

// --- Batch driver ---------------------------------------------------------

TEST(BatchRunTest, ManyDocumentsMatchPerDocumentSerialRuns) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::vector<std::string> docs;
  for (int d = 0; d < 12; ++d) {
    std::string doc = "<a>";
    for (int i = 0; i <= d * 7; ++i) {
      doc += "<b>d" + std::to_string(d) + "i" + std::to_string(i) + "</b>";
      doc += "<c>skip</c>";
    }
    doc += "</a>";
    docs.push_back(doc);
  }
  std::vector<std::string_view> views(docs.begin(), docs.end());

  std::string expected;
  RunStats expected_stats;
  for (const std::string& d : docs) {
    RunStats st;
    expected += SerialRun(pf, d, &st);
    parallel::MergeRunStats(&expected_stats, st);
  }

  for (int threads : {1, 2, 4, 7}) {
    SCOPED_TRACE(threads);
    parallel::ThreadPool pool(threads);
    StringSink sink;
    RunStats stats;
    Status s = parallel::BatchRunMerged(pf.tables(), views, &sink, &stats,
                                        &pool);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(sink.str(), expected);
    EXPECT_EQ(stats.matches, expected_stats.matches);
    EXPECT_EQ(stats.output_bytes, expected_stats.output_bytes);
    EXPECT_EQ(stats.input_bytes, expected_stats.input_bytes);
  }
}

TEST(BatchRunTest, PerDocumentErrorsAreIsolatedAndOrdered) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b)*> <!ELEMENT b (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::vector<std::string_view> docs = {
      "<a><b>ok1</b></a>",
      "<a><b>truncated",  // invalid
      "<a><b>ok2</b></a>",
  };
  parallel::ThreadPool pool(3);
  std::vector<parallel::BatchResult> results =
      parallel::BatchRun(pf.tables(), docs, &pool);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_EQ(results[0].output, "<a><b>ok1</b></a>");
  EXPECT_EQ(results[2].output, "<a><b>ok2</b></a>");
}

TEST(BatchRunTest, StreamingMergedMatchesBufferedMergeAcrossBudgets) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::vector<std::string> docs;
  for (int d = 0; d < 9; ++d) {
    std::string doc = "<a>";
    for (int i = 0; i <= d * 11; ++i) {
      doc += "<b>d" + std::to_string(d) + "i" + std::to_string(i) + "</b>";
      doc += "<c>skip</c>";
    }
    doc += "</a>";
    docs.push_back(doc);
  }
  std::string expected;
  RunStats expected_stats;
  for (const std::string& d : docs) {
    RunStats st;
    expected += SerialRun(pf, d, &st);
    parallel::MergeRunStats(&expected_stats, st);
  }
  std::vector<MemorySource> sources(docs.begin(), docs.end());
  std::vector<const InputSource*> srcs;
  for (const MemorySource& s : sources) srcs.push_back(&s);

  for (int threads : {1, 2, 4, 7}) {
    SCOPED_TRACE(threads);
    parallel::ThreadPool pool(threads);
    for (size_t budget : {size_t{0}, size_t{1}, size_t{57}}) {
      SCOPED_TRACE(budget);
      parallel::StreamOptions sopts;
      sopts.chunk_bytes = 73;
      sopts.max_buffer_bytes = budget;
      StringSink sink;
      RunStats stats;
      Status s = parallel::BatchRunStreamingMerged(pf.tables(), srcs, &sink,
                                                   &stats, &pool, sopts);
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(sink.str(), expected);
      EXPECT_EQ(stats.matches, expected_stats.matches);
      EXPECT_EQ(stats.output_bytes, expected_stats.output_bytes);
      EXPECT_EQ(stats.input_bytes, expected_stats.input_bytes);
    }
  }
}

TEST(BatchRunTest, StreamingMergedStopsAtTheFirstError) {
  // BatchRunMerged semantics: the first (lowest-index) failing document is
  // reported and only the clean prefix before it is emitted -- even though
  // later documents finish fine (possibly first) on other workers.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b)*> <!ELEMENT b (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::vector<std::string> docs = {
      "<a><b>ok1</b></a>",
      "<a><b>ok2</b></a>",
      "<a><b>truncated",  // invalid
      "<a><b>ok3</b></a>",
  };
  std::vector<MemorySource> sources(docs.begin(), docs.end());
  std::vector<const InputSource*> srcs;
  for (const MemorySource& s : sources) srcs.push_back(&s);
  parallel::ThreadPool pool(4);
  parallel::StreamOptions sopts;
  sopts.max_buffer_bytes = 4;
  StringSink sink;
  Status s = parallel::BatchRunStreamingMerged(pf.tables(), srcs, &sink,
                                               nullptr, &pool, sopts);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(sink.str(), "<a><b>ok1</b></a><a><b>ok2</b></a>");
}

// --- InputSource / mmap ---------------------------------------------------

TEST(BatchRunTest, StreamingToFilesWritesEveryDocumentWithErrorIsolation) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  std::vector<std::string> docs;
  for (int d = 0; d < 24; ++d) {
    std::string doc = "<a>";
    for (int i = 0; i <= d * 3; ++i) {
      doc += "<b>d" + std::to_string(d) + "i" + std::to_string(i) + "</b>";
      doc += "<c>skip</c>";
    }
    doc += "</a>";
    docs.push_back(doc);
  }
  docs[7] = "<a><b>never closed";  // fails mid-batch

  std::vector<MemorySource> sources(docs.begin(), docs.end());
  std::vector<const InputSource*> srcs;
  std::vector<std::string> out_paths;
  for (size_t i = 0; i < docs.size(); ++i) {
    srcs.push_back(&sources[i]);
    out_paths.push_back(::testing::TempDir() + "/smpx_tofiles_" +
                        std::to_string(i) + ".xml");
  }

  // Tiny budgets force the spill + parked-segment path; 0 keeps segments
  // resident. Both must produce identical files.
  for (size_t budget : {size_t{0}, size_t{16}}) {
    SCOPED_TRACE(budget);
    parallel::ThreadPool pool(4);
    parallel::StreamOptions opts;
    opts.chunk_bytes = 13;
    opts.max_buffer_bytes = budget;
    std::vector<RunStats> stats;
    std::vector<Status> statuses = parallel::BatchRunStreamingToFiles(
        pf.tables(), srcs, out_paths, &stats, &pool, opts);
    ASSERT_EQ(statuses.size(), docs.size());
    for (size_t i = 0; i < docs.size(); ++i) {
      auto content = ReadFileToString(out_paths[i]);
      ASSERT_TRUE(content.ok()) << out_paths[i];
      if (i == 7) {
        EXPECT_FALSE(statuses[i].ok());
        continue;  // partial projection; content depends on failure point
      }
      EXPECT_TRUE(statuses[i].ok()) << statuses[i].ToString();
      EXPECT_EQ(*content, SerialRun(pf, docs[i], nullptr))
          << "doc " << i << " budget " << budget;
      EXPECT_EQ(stats[i].output_bytes, content->size());
    }
  }
  for (const std::string& p : out_paths) std::remove(p.c_str());
}

TEST(InputSourceTest, MemorySourceRoundTrip) {
  MemorySource src("hello world");
  EXPECT_EQ(src.size(), 11u);
  EXPECT_EQ(src.Contiguous(), "hello world");
  char buf[5];
  auto n = src.ReadAt(6, buf, 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(std::string_view(buf, 5), "world");
  EXPECT_EQ(*src.ReadAt(11, buf, 5), 0u);
}

TEST(InputSourceTest, MmapSourceReadsFileAndStreams) {
  std::string path = ::testing::TempDir() + "/smpx_mmap_test.xml";
  std::string content = "<a><b>mmap payload</b></a>";
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  auto src = MmapSource::Open(path);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  EXPECT_EQ((*src)->size(), content.size());
  EXPECT_EQ((*src)->Contiguous(), content);

  // The pull adapter feeds the serial engine from the mapping.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b)*> <!ELEMENT b (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/a/b#");
  SourceStream stream(src->get());
  StringSink sink;
  ASSERT_TRUE(pf.Run(&stream, &sink).ok());
  EXPECT_EQ(sink.str(), content);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smpx::core
