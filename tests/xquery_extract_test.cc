// Tests for XQuery projection-path extraction (paper Example 4 and the
// XMark query shapes).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "paths/xquery_extract.h"

namespace smpx::paths {
namespace {

std::vector<std::string> Extract(std::string_view query) {
  auto r = ExtractProjectionPaths(query);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << query;
  std::vector<std::string> out;
  if (r.ok()) {
    for (const ProjectionPath& p : *r) out.push_back(p.ToString());
  }
  return out;
}

bool Has(const std::vector<std::string>& set, const std::string& p) {
  return std::find(set.begin(), set.end(), p) != set.end();
}

TEST(XQueryExtractTest, Example4SimpleQuery) {
  // <q>{//australia//description}</q> extracts //australia//description#
  // and /* (paper Example 4).
  auto paths = Extract("<q>{ //australia//description }</q>");
  EXPECT_TRUE(Has(paths, "//australia//description#")) << paths.size();
  EXPECT_TRUE(Has(paths, "/*"));
  EXPECT_EQ(paths.size(), 2u);
}

TEST(XQueryExtractTest, Example4Q13) {
  // XMark Q13 (paper Example 4): extracts
  // /site/regions/australia/item/name#,
  // /site/regions/australia/item/description#, and /*.
  auto paths = Extract(
      "for $i in /site/regions/australia/item\n"
      "return <item name=\"{$i/name/text()}\">{$i/description}</item>");
  EXPECT_TRUE(Has(paths, "/site/regions/australia/item/name#"));
  EXPECT_TRUE(Has(paths, "/site/regions/australia/item/description#"));
  EXPECT_TRUE(Has(paths, "/*"));
  EXPECT_TRUE(Has(paths, "/site/regions/australia/item"))
      << "the for-binding itself is navigated";
}

TEST(XQueryExtractTest, BarePathQueryGetsHash) {
  auto paths = Extract("/site/people/person/name");
  EXPECT_TRUE(Has(paths, "/site/people/person/name#"));
  EXPECT_TRUE(Has(paths, "/*"));
}

TEST(XQueryExtractTest, TextStepFlagsParent) {
  auto paths = Extract(
      "for $p in /site/people/person return $p/emailaddress/text()");
  EXPECT_TRUE(Has(paths, "/site/people/person/emailaddress#"));
}

TEST(XQueryExtractTest, AttributeStepFlagsParent) {
  auto paths = Extract(
      "for $p in /site/people/person return $p/profile/@income");
  EXPECT_TRUE(Has(paths, "/site/people/person/profile@"));
}

TEST(XQueryExtractTest, CountIsStructural) {
  auto paths = Extract("count(/site/regions//item)");
  EXPECT_TRUE(Has(paths, "/site/regions//item"))
      << "count() needs nodes, not subtrees";
  EXPECT_FALSE(Has(paths, "/site/regions//item#"));
}

TEST(XQueryExtractTest, WhereComparisonConsumesValues) {
  auto paths = Extract(
      "for $p in /site/people/person where $p/name = 'Ada' "
      "return $p/emailaddress");
  EXPECT_TRUE(Has(paths, "/site/people/person/name#"));
  EXPECT_TRUE(Has(paths, "/site/people/person/emailaddress#"));
}

TEST(XQueryExtractTest, LetBindingFlowsToUse) {
  auto paths = Extract(
      "for $a in /site/open_auctions/open_auction "
      "let $b := $a/bidder return $b/increase");
  EXPECT_TRUE(Has(paths, "/site/open_auctions/open_auction/bidder/increase#"));
}

TEST(XQueryExtractTest, NestedFlworAndJoin) {
  auto paths = Extract(
      "for $p in /site/people/person "
      "for $c in /site/closed_auctions/closed_auction "
      "where $c/buyer/@person = $p/@id "
      "return <r>{$p/name}</r>");
  EXPECT_TRUE(Has(paths, "/site/people/person/name#"));
  EXPECT_TRUE(Has(paths, "/site/closed_auctions/closed_auction/buyer@"));
  EXPECT_TRUE(Has(paths, "/site/people/person@"));
}

TEST(XQueryExtractTest, PositionalPredicatesAreDropped) {
  auto paths = Extract(
      "for $a in /site/open_auctions/open_auction "
      "return $a/bidder[1]/increase");
  EXPECT_TRUE(Has(paths, "/site/open_auctions/open_auction/bidder/increase#"));
}

TEST(XQueryExtractTest, ValuePredicateInsidePath) {
  auto paths = Extract("//DataBank[DataBankName = 'PDB']/AccessionNumberList");
  EXPECT_TRUE(Has(paths, "//DataBank/DataBankName#"));
  EXPECT_TRUE(Has(paths, "//DataBank/AccessionNumberList#"));
}

TEST(XQueryExtractTest, ContainsPredicate) {
  auto paths = Extract(
      "/MedlineCitationSet/MedlineCitation"
      "[contains(MedlineJournalInfo//text(), 'X')]/DateCompleted");
  EXPECT_TRUE(Has(paths,
                  "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo#"));
  EXPECT_TRUE(Has(paths,
                  "/MedlineCitationSet/MedlineCitation/DateCompleted#"));
}

TEST(XQueryExtractTest, QuantifiedExpression) {
  auto paths = Extract(
      "for $a in /site/open_auctions/open_auction "
      "where some $pr in $a/bidder/personref satisfies $pr/@person = 'p1' "
      "return $a/reserve");
  EXPECT_TRUE(Has(paths, "/site/open_auctions/open_auction/bidder/personref@"));
  EXPECT_TRUE(Has(paths, "/site/open_auctions/open_auction/reserve#"));
}

TEST(XQueryExtractTest, OrderByConsumesKeys) {
  auto paths = Extract(
      "for $i in /site/regions//item order by $i/name return $i/location");
  EXPECT_TRUE(Has(paths, "/site/regions//item/name#"));
  EXPECT_TRUE(Has(paths, "/site/regions//item/location#"));
}

TEST(XQueryExtractTest, CommentsAreSkipped) {
  auto paths = Extract("(: XM18 :) /site/open_auctions/open_auction/initial");
  EXPECT_TRUE(Has(paths, "/site/open_auctions/open_auction/initial#"));
}

TEST(XQueryExtractTest, RejectsUnsupported) {
  EXPECT_FALSE(ExtractProjectionPaths("unknown-fn(/a)").ok());
  EXPECT_FALSE(ExtractProjectionPaths("for $x in /a return $y/b").ok());
  EXPECT_FALSE(ExtractProjectionPaths("").ok());
}

TEST(XQueryExtractTest, StarAlwaysPresent) {
  for (const char* q : {"count(//item)", "/a/b", "<r>{/x/y}</r>"}) {
    EXPECT_TRUE(Has(Extract(q), "/*")) << q;
  }
}

}  // namespace
}  // namespace smpx::paths
