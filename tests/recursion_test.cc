// Tests for the recursive-DTD extension (the paper notes "all techniques
// can be extended to handle recursiveness"; here recursion becomes opaque
// regions that the runtime tunnels over by tag balancing). The flagship
// scenario is the *unmodified* XMark DTD, whose item descriptions contain
// recursive parlists -- the very structure the paper had to strip.

#include <string>

#include <gtest/gtest.h>

#include "core/prefilter.h"
#include "query/equivalence.h"
#include "xml/tokenizer.h"

namespace smpx {
namespace {

// The real (recursive) XMark description structure.
constexpr char kRecursiveXmark[] = R"(<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (australia)>
<!ELEMENT australia (item*)>
<!ELEMENT item (name, description, shipping)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT parlist (listitem*)>
<!ELEMENT listitem (text | parlist)>
<!ELEMENT shipping (#PCDATA)>
]>)";

constexpr char kRecursiveDoc[] =
    "<site><regions><australia>"
    "<item><name>alpha</name><description><parlist>"
    "<listitem><text>a1</text></listitem>"
    "<listitem><parlist><listitem><text>deep</text></listitem></parlist>"
    "</listitem></parlist></description><shipping>fast</shipping></item>"
    "<item><name>beta</name><description><text>flat</text></description>"
    "<shipping>slow</shipping></item>"
    "</australia></regions></site>";

core::Prefilter CompileRec(std::string_view dtd_text,
                           std::string_view paths) {
  auto dtd = dtd::Dtd::Parse(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto parsed = paths::ProjectionPath::ParseList(paths);
  EXPECT_TRUE(parsed.ok());
  core::CompileOptions opts;
  opts.allow_recursion = true;
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*parsed),
                                     opts);
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

TEST(RecursionTest, RejectedByDefault) {
  auto dtd = dtd::Dtd::Parse(kRecursiveXmark);
  ASSERT_TRUE(dtd.ok());
  auto paths = paths::ProjectionPath::ParseList("//name#");
  auto pf = core::Prefilter::Compile(std::move(*dtd), *paths);
  ASSERT_FALSE(pf.ok());
  EXPECT_EQ(pf.status().code(), StatusCode::kUnsupported);
}

TEST(RecursionTest, CopiedRecursiveSubtreesSurviveWhole) {
  // //description#: the recursive parlists live inside a wholly-copied
  // subtree; tag balancing must find the *matching* close.
  core::Prefilter pf = CompileRec(kRecursiveXmark, "//description#");
  auto out = pf.RunOnBuffer(kRecursiveDoc);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("<text>deep</text>"), std::string::npos)
      << "nested parlist content must be inside the copied region";
  EXPECT_TRUE(xml::CheckWellFormed(*out).ok()) << *out;
  EXPECT_EQ(out->find("<shipping>"), std::string::npos);
}

TEST(RecursionTest, SkippedRecursiveRegions) {
  // //shipping#: descriptions (with their recursive parlists) are skipped.
  core::Prefilter pf = CompileRec(kRecursiveXmark, "//shipping#");
  core::RunStats stats;
  auto out = pf.RunOnBuffer(kRecursiveDoc, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out,
            "<site><shipping>fast</shipping><shipping>slow</shipping>"
            "</site>");
}

TEST(RecursionTest, BalancingStopsAtTheMatchingClose) {
  // Direct recursion with same-name nesting: projecting the sibling after
  // a recursive region requires the balance counter (a plain search for
  // </r> would stop at the inner one).
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (r, keep)> <!ELEMENT r (r?, x?)>"
      " <!ELEMENT x (#PCDATA)> <!ELEMENT keep (#PCDATA)> ]>";
  core::Prefilter pf = CompileRec(dtd, "/a/keep#");
  auto out = pf.RunOnBuffer(
      "<a><r><r><r><x>deep</x></r></r><x>mid</x></r><keep>yes</keep></a>");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "<a><keep>yes</keep></a>");
}

TEST(RecursionTest, BachelorRecursiveTags) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (r, keep)> <!ELEMENT r (r*)>"
      " <!ELEMENT keep (#PCDATA)> ]>";
  core::Prefilter pf = CompileRec(dtd, "/a/keep#");
  for (const char* doc :
       {"<a><r/><keep>k</keep></a>", "<a><r><r/><r/></r><keep>k</keep></a>",
        "<a><r><r><r/></r></r><keep>k</keep></a>"}) {
    auto out = pf.RunOnBuffer(doc);
    ASSERT_TRUE(out.ok()) << doc << ": " << out.status().ToString();
    EXPECT_EQ(*out, "<a><keep>k</keep></a>") << doc;
  }
}

TEST(RecursionTest, PathsIntoRecursionAreRejected) {
  // //text# selects nodes strictly inside the recursive region without
  // covering the region itself: unsound to skip, must be rejected.
  auto dtd = dtd::Dtd::Parse(kRecursiveXmark);
  ASSERT_TRUE(dtd.ok());
  auto paths = paths::ProjectionPath::ParseList("//listitem//text#");
  core::CompileOptions opts;
  opts.allow_recursion = true;
  auto pf = core::Prefilter::Compile(std::move(*dtd), *paths, opts);
  ASSERT_FALSE(pf.ok());
  EXPECT_EQ(pf.status().code(), StatusCode::kUnsupported);
}

TEST(RecursionTest, PathsIntoCopiedRecursionAreFine) {
  // //description# covers the recursion (C2), so //description//text# style
  // nesting inside is acceptable as part of the wholesale copy.
  core::Prefilter pf =
      CompileRec(kRecursiveXmark, "//description# //description//text#");
  auto out = pf.RunOnBuffer(kRecursiveDoc);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("deep"), std::string::npos);
}

TEST(RecursionTest, ProjectionSafetyHolds) {
  core::Prefilter pf = CompileRec(kRecursiveXmark, "//description#");
  auto out = pf.RunOnBuffer(kRecursiveDoc);
  ASSERT_TRUE(out.ok());
  auto report =
      query::CheckProjectionSafety(kRecursiveDoc, *out, pf.paths());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe) << report->first_violation;
}

TEST(RecursionTest, MutualRecursionViaTwoElements) {
  const char dtd[] =
      "<!DOCTYPE top [ <!ELEMENT top (even?, keep)>"
      " <!ELEMENT even (odd?)> <!ELEMENT odd (even?)>"
      " <!ELEMENT keep (#PCDATA)> ]>";
  core::Prefilter pf = CompileRec(dtd, "/top/keep#");
  auto out = pf.RunOnBuffer(
      "<top><even><odd><even><odd/></even></odd></even>"
      "<keep>payload</keep></top>");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "<top><keep>payload</keep></top>");
}

TEST(RecursionTest, StreamingSmallWindow) {
  core::Prefilter pf = CompileRec(kRecursiveXmark, "//description#");
  core::EngineOptions opts;
  opts.window_capacity = 64;
  auto small = pf.RunOnBuffer(kRecursiveDoc, nullptr, opts);
  auto big = pf.RunOnBuffer(kRecursiveDoc);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*small, *big);
}

}  // namespace
}  // namespace smpx
