// Unit and property tests for the string matching substrate: every skip
// algorithm must agree with the naive oracle on occurrence positions, and
// the skip algorithms must actually skip (fewer comparisons than text size
// on representative inputs).

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "strmatch/aho_corasick.h"
#include "strmatch/boyer_moore.h"
#include "strmatch/commentz_walter.h"
#include "strmatch/matcher.h"
#include "strmatch/naive.h"

namespace smpx::strmatch {
namespace {



TEST(BoyerMooreTest, FindsSingleOccurrence) {
  BoyerMooreMatcher m("ICDE");
  Match r = m.Search("we will meet at ICDE in Cancun", 0, nullptr);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.pos, 16u);
  EXPECT_EQ(r.pattern, 0);
}

TEST(BoyerMooreTest, RespectsFromOffset) {
  BoyerMooreMatcher m("ab");
  EXPECT_EQ(m.Search("ab..ab", 0, nullptr).pos, 0u);
  EXPECT_EQ(m.Search("ab..ab", 1, nullptr).pos, 4u);
  EXPECT_EQ(m.Search("ab..ab", 4, nullptr).pos, 4u);
  EXPECT_FALSE(m.Search("ab..ab", 5, nullptr).found());
}

TEST(BoyerMooreTest, NoMatchReturnsNpos) {
  BoyerMooreMatcher m("xyz");
  EXPECT_FALSE(m.Search("aaaaaaaaaa", 0, nullptr).found());
  EXPECT_FALSE(m.Search("", 0, nullptr).found());
  EXPECT_FALSE(m.Search("xy", 0, nullptr).found());
}

TEST(BoyerMooreTest, MatchAtTextStartAndEnd) {
  BoyerMooreMatcher m("abc");
  EXPECT_EQ(m.Search("abc", 0, nullptr).pos, 0u);
  EXPECT_EQ(m.Search("zzabc", 0, nullptr).pos, 2u);
}

TEST(BoyerMooreTest, PeriodicPattern) {
  BoyerMooreMatcher m("aaa");
  EXPECT_EQ(m.Search("baaaa", 0, nullptr).pos, 1u);
  EXPECT_EQ(m.Search("aabaa", 0, nullptr).found(), false);
}

TEST(BoyerMooreTest, SkipsCharactersOnRandomText) {
  // On text without pattern characters, BM inspects roughly n/m characters.
  std::string text(10000, 'x');
  BoyerMooreMatcher m("<description");
  SearchStats stats;
  EXPECT_FALSE(m.Search(text, 0, &stats).found());
  EXPECT_LT(stats.comparisons, text.size() / 4);
  EXPECT_GT(stats.AvgShift(), 4.0);
}

TEST(BoyerMooreTest, CountsComparisons) {
  BoyerMooreMatcher m("ab");
  SearchStats stats;
  m.Search("ab", 0, &stats);
  EXPECT_EQ(stats.comparisons, 2u);  // matched 'b' then 'a'
}

TEST(HorspoolTest, AgreesWithBoyerMooreOnPositions) {
  std::string text = "abracadabra abracadabra";
  BoyerMooreMatcher bm("cadab");
  HorspoolMatcher hp("cadab");
  EXPECT_EQ(bm.Search(text, 0, nullptr).pos, hp.Search(text, 0, nullptr).pos);
}

TEST(CommentzWalterTest, FindsClosestOfMultipleKeywords) {
  CommentzWalterMatcher m({"<b", "<c", "</a"});
  std::string text = "<a>text<c><b/></c></a>";
  Match r = m.Search(text, 0, nullptr);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.pos, 7u);
  EXPECT_EQ(m.patterns()[static_cast<size_t>(r.pattern)], "<c");
}

TEST(CommentzWalterTest, SingleKeywordDegeneratesGracefully) {
  CommentzWalterMatcher m({"needle"});
  EXPECT_EQ(m.Search("hay needle hay", 0, nullptr).pos, 4u);
}

TEST(CommentzWalterTest, PrefixPatternsReportLongestAtSameStart) {
  // "<Abstract" and "<AbstractText" both occur at position 0; the contract
  // requires reporting by minimal end, so the shorter keyword wins here.
  CommentzWalterMatcher m({"<Abstract", "<AbstractText"});
  Match r = m.Search("<AbstractText>", 0, nullptr);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.pos, 0u);
  EXPECT_EQ(m.patterns()[static_cast<size_t>(r.pattern)], "<Abstract");
}

TEST(CommentzWalterTest, OverlappingAlphabetKeywords) {
  CommentzWalterMatcher m({"abcde", "cde", "e"});
  Match r = m.Search("xxabcdexx", 0, nullptr);
  ASSERT_TRUE(r.found());
  // First end position with a match is 6 ('e' of abcde); longest pattern
  // ending there that starts >= 0 is "abcde" at position 2.
  EXPECT_EQ(r.pos, 2u);
  EXPECT_EQ(m.patterns()[static_cast<size_t>(r.pattern)], "abcde");
}

TEST(CommentzWalterTest, SkipsOnLongKeywords) {
  std::string text(20000, '.');
  CommentzWalterMatcher m({"<description", "<annotation", "<emailaddress"});
  SearchStats stats;
  EXPECT_FALSE(m.Search(text, 0, &stats).found());
  // wmin = 11, so at most ~n/11 inspections plus slack.
  EXPECT_LT(stats.comparisons, text.size() / 5);
}

TEST(AhoCorasickTest, FindsFirstOfMultipleKeywords) {
  AhoCorasickMatcher m({"he", "she", "his", "hers"});
  Match r = m.Search("xxhersxx", 0, nullptr);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.pos, 2u);
  EXPECT_EQ(m.patterns()[static_cast<size_t>(r.pattern)], "he");
}

TEST(AhoCorasickTest, ReportsLongestAtSameEnd) {
  AhoCorasickMatcher m({"she", "he"});
  Match r = m.Search("ushers", 0, nullptr);
  ASSERT_TRUE(r.found());
  // "she" and "he" both end at index 4; longest ("she", start 1) wins.
  EXPECT_EQ(r.pos, 1u);
  EXPECT_EQ(m.patterns()[static_cast<size_t>(r.pattern)], "she");
}

TEST(AhoCorasickTest, InspectsEveryCharacter) {
  std::string text(1000, 'z');
  AhoCorasickMatcher m({"<a", "<b"});
  SearchStats stats;
  EXPECT_FALSE(m.Search(text, 0, &stats).found());
  EXPECT_EQ(stats.comparisons, text.size());
}

TEST(MemchrTest, RequiresSharedLeadCharacter) {
  EXPECT_EQ(MakeMatcher({"<a", "b"}, Algorithm::kMemchr), nullptr);
  EXPECT_NE(MakeMatcher({"<a", "<b"}, Algorithm::kMemchr), nullptr);
}

TEST(FactoryTest, AutoSelectsBmForSingleAndCwForMulti) {
  EXPECT_EQ(MakeMatcher({"<site"})->name(), "BM");
  EXPECT_EQ(MakeMatcher({"<a", "<b"})->name(), "CW");
}

TEST(FactoryTest, RejectsEmptyInput) {
  EXPECT_EQ(MakeMatcher({}), nullptr);
  EXPECT_EQ(MakeMatcher({""}), nullptr);
  EXPECT_EQ(MakeMatcher({"ok", ""}), nullptr);
}

TEST(FactoryTest, BmRejectsMultiplePatterns) {
  EXPECT_EQ(MakeMatcher({"a", "b"}, Algorithm::kBoyerMoore), nullptr);
  EXPECT_EQ(MakeMatcher({"a", "b"}, Algorithm::kHorspool), nullptr);
}

// ---------------------------------------------------------------------------
// Property tests: every algorithm agrees with the naive oracle on random
// texts and random pattern sets.
// ---------------------------------------------------------------------------

struct DifferentialCase {
  Algorithm algo;
  int alphabet;  // alphabet size for text and patterns
  bool tag_style;  // patterns shaped like XML tag prefixes
};

class DifferentialTest : public ::testing::TestWithParam<DifferentialCase> {};

std::string RandomString(std::mt19937* rng, int alphabet, size_t min_len,
                         size_t max_len) {
  std::uniform_int_distribution<size_t> len_dist(min_len, max_len);
  std::uniform_int_distribution<int> char_dist(0, alphabet - 1);
  std::string s(len_dist(*rng), '\0');
  for (char& c : s) c = static_cast<char>('a' + char_dist(*rng));
  return s;
}

TEST_P(DifferentialTest, AgreesWithNaiveOracle) {
  const DifferentialCase& param = GetParam();
  std::mt19937 rng(42);
  for (int round = 0; round < 200; ++round) {
    std::uniform_int_distribution<int> npat_dist(1, 5);
    int npat = param.algo == Algorithm::kBoyerMoore ||
                       param.algo == Algorithm::kHorspool
                   ? 1
                   : npat_dist(rng);
    std::vector<std::string> patterns;
    for (int i = 0; i < npat; ++i) {
      std::string p = RandomString(&rng, param.alphabet, 1, 8);
      if (param.tag_style) p = "<" + p;
      patterns.push_back(p);
    }
    std::string text = RandomString(&rng, param.alphabet, 0, 300);
    if (param.tag_style) {
      // Sprinkle tag-like openings so matches actually occur.
      for (size_t i = 0; i < text.size(); i += 13) text[i] = '<';
    }

    std::unique_ptr<Matcher> subject = MakeMatcher(patterns, param.algo);
    ASSERT_NE(subject, nullptr);
    NaiveMatcher oracle(patterns);

    Match expected = oracle.Search(text, 0, nullptr);
    Match actual = subject->Search(text, 0, nullptr);
    ASSERT_EQ(actual.found(), expected.found())
        << subject->name() << " round " << round << " text=" << text;
    if (expected.found()) {
      ASSERT_EQ(actual.pos, expected.pos)
          << subject->name() << " round " << round << " text=" << text;
      ASSERT_EQ(patterns[static_cast<size_t>(actual.pattern)],
                patterns[static_cast<size_t>(expected.pattern)])
          << subject->name() << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DifferentialTest,
    ::testing::Values(
        DifferentialCase{Algorithm::kBoyerMoore, 2, false},
        DifferentialCase{Algorithm::kBoyerMoore, 4, false},
        DifferentialCase{Algorithm::kBoyerMoore, 26, false},
        DifferentialCase{Algorithm::kHorspool, 2, false},
        DifferentialCase{Algorithm::kHorspool, 26, false},
        DifferentialCase{Algorithm::kCommentzWalter, 2, false},
        DifferentialCase{Algorithm::kCommentzWalter, 4, false},
        DifferentialCase{Algorithm::kCommentzWalter, 26, false},
        DifferentialCase{Algorithm::kCommentzWalter, 4, true},
        DifferentialCase{Algorithm::kSetHorspool, 2, false},
        DifferentialCase{Algorithm::kSetHorspool, 26, false},
        DifferentialCase{Algorithm::kSetHorspool, 4, true},
        DifferentialCase{Algorithm::kAhoCorasick, 2, false},
        DifferentialCase{Algorithm::kAhoCorasick, 26, false},
        DifferentialCase{Algorithm::kMemchr, 4, true}),
    [](const ::testing::TestParamInfo<DifferentialCase>& info) {
      std::string name(AlgorithmName(info.param.algo));
      name += "_a" + std::to_string(info.param.alphabet);
      if (info.param.tag_style) name += "_tags";
      return name;
    });

// Exhaustive sweep over all alignments: the match must be found wherever it
// is planted, including at text boundaries.
class PlantedMatchTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PlantedMatchTest, FindsPlantedOccurrenceAtEveryOffset) {
  std::vector<std::string> patterns = {"<item", "<name", "</item"};
  if (GetParam() == Algorithm::kBoyerMoore ||
      GetParam() == Algorithm::kHorspool) {
    patterns = {"<item"};
  }
  std::unique_ptr<Matcher> m = MakeMatcher(patterns, GetParam());
  ASSERT_NE(m, nullptr);
  for (size_t offset = 0; offset < 64; ++offset) {
    std::string text(offset, 'x');
    text += "<item";
    text += std::string(17, 'y');
    Match r = m->Search(text, 0, nullptr);
    ASSERT_TRUE(r.found()) << "offset " << offset;
    EXPECT_EQ(r.pos, offset);
    // And it must be invisible when the search starts past it.
    EXPECT_FALSE(m->Search(text, offset + 1, nullptr).found());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PlantedMatchTest,
    ::testing::Values(Algorithm::kBoyerMoore, Algorithm::kHorspool,
                      Algorithm::kCommentzWalter, Algorithm::kSetHorspool,
                      Algorithm::kAhoCorasick, Algorithm::kMemchr,
                      Algorithm::kNaive),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(AlgorithmName(info.param));
    });

}  // namespace
}  // namespace smpx::strmatch
