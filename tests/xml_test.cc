// Tests for the XML substrate: tokenizer, escaping, DOM parsing with memory
// budget, serialization round trips.

#include <string>

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/token.h"
#include "xml/tokenizer.h"

namespace smpx::xml {
namespace {

std::vector<Token> MustTokenize(std::string_view input,
                                TokenizerOptions opts = {}) {
  auto r = TokenizeAll(input, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(EscapeTest, TextRoundTrip) {
  std::string raw = "a < b & c > d \"quoted\"";
  EXPECT_EQ(Unescape(EscapeText(raw)), raw);
  EXPECT_EQ(EscapeText("<&>"), "&lt;&amp;&gt;");
}

TEST(EscapeTest, AttributeEscapesQuotes) {
  EXPECT_EQ(EscapeAttribute("a\"b"), "a&quot;b");
  EXPECT_EQ(EscapeText("a\"b"), "a\"b");
}

TEST(EscapeTest, CharacterReferences) {
  EXPECT_EQ(Unescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(Unescape("&apos;"), "'");
  EXPECT_EQ(Unescape("&unknown;"), "&unknown;");
  EXPECT_EQ(Unescape("& alone"), "& alone");
}

TEST(TokenizerTest, SimpleDocument) {
  auto tokens = MustTokenize("<a><b x=\"1\">hi</b><c/></a>");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, TokenType::kStartTag);
  EXPECT_EQ(tokens[0].name, "a");
  EXPECT_EQ(tokens[1].type, TokenType::kStartTag);
  ASSERT_EQ(tokens[1].attrs.size(), 1u);
  EXPECT_EQ(tokens[1].attrs[0].name, "x");
  EXPECT_EQ(tokens[1].attrs[0].value, "1");
  EXPECT_EQ(tokens[2].type, TokenType::kText);
  EXPECT_EQ(tokens[2].text, "hi");
  EXPECT_EQ(tokens[3].type, TokenType::kEndTag);
  EXPECT_EQ(tokens[4].type, TokenType::kEmptyTag);
  EXPECT_EQ(tokens[4].name, "c");
  EXPECT_EQ(tokens[5].type, TokenType::kEndTag);
}

TEST(TokenizerTest, OffsetsAreExact) {
  std::string doc = "<a>xy</a>";
  auto tokens = MustTokenize(doc);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[0].end, 3u);
  EXPECT_EQ(tokens[1].begin, 3u);
  EXPECT_EQ(tokens[1].end, 5u);
  EXPECT_EQ(tokens[2].begin, 5u);
  EXPECT_EQ(tokens[2].end, 9u);
}

TEST(TokenizerTest, WhitespaceAndAttributesInTags) {
  auto tokens = MustTokenize("<item  \n id = '7'   class=\"x y\" ></item >");
  ASSERT_EQ(tokens.size(), 2u);
  ASSERT_EQ(tokens[0].attrs.size(), 2u);
  EXPECT_EQ(tokens[0].attrs[0].name, "id");
  EXPECT_EQ(tokens[0].attrs[0].value, "7");
  EXPECT_EQ(tokens[0].attrs[1].value, "x y");
  EXPECT_EQ(tokens[1].type, TokenType::kEndTag);
}

TEST(TokenizerTest, GtInsideAttributeValue) {
  auto tokens = MustTokenize("<a href='x>y'/>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEmptyTag);
  EXPECT_EQ(tokens[0].attrs[0].value, "x>y");
}

TEST(TokenizerTest, CommentsPisDoctypeCdata) {
  auto tokens = MustTokenize(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>"
      "<a><!-- note --><![CDATA[1<2]]></a>");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, TokenType::kPi);
  EXPECT_EQ(tokens[1].type, TokenType::kDoctype);
  EXPECT_EQ(tokens[3].type, TokenType::kComment);
  EXPECT_EQ(tokens[3].text, " note ");
  EXPECT_EQ(tokens[4].type, TokenType::kCData);
  EXPECT_EQ(tokens[4].text, "1<2");
}

TEST(TokenizerTest, MalformedInputs) {
  EXPECT_FALSE(TokenizeAll("<a").ok());
  EXPECT_FALSE(TokenizeAll("< a>").ok());
  EXPECT_FALSE(TokenizeAll("<a x></a>").ok());
  EXPECT_FALSE(TokenizeAll("<a x=1></a>").ok());
  EXPECT_FALSE(TokenizeAll("<a x='1</a>").ok());
  EXPECT_FALSE(TokenizeAll("<a b='<'/>").ok());
  EXPECT_FALSE(TokenizeAll("<!-- unterminated").ok());
}

TEST(TokenizerTest, WellFormednessMode) {
  TokenizerOptions opts;
  opts.check_well_formed = true;
  EXPECT_FALSE(TokenizeAll("<a><b></a></b>", opts).ok());
  EXPECT_FALSE(TokenizeAll("<a><b></b>", opts).ok());
  EXPECT_TRUE(TokenizeAll("<a><b></b></a>", opts).ok());
}

TEST(CheckWellFormedTest, AcceptsAndRejects) {
  EXPECT_TRUE(CheckWellFormed("<a><b/></a>").ok());
  EXPECT_TRUE(CheckWellFormed("  <a/>  ").ok());
  EXPECT_FALSE(CheckWellFormed("").ok());
  EXPECT_FALSE(CheckWellFormed("text only").ok());
  EXPECT_FALSE(CheckWellFormed("<a/><b/>").ok());
  EXPECT_FALSE(CheckWellFormed("<a></b>").ok());
}

TEST(DomTest, ParseAndNavigate) {
  auto doc = ParseDocument("<site><item id=\"1\">T&amp;V</item><x/></site>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const DomNode& root = doc->node(doc->root());
  EXPECT_EQ(root.name, "site");
  ASSERT_EQ(root.children.size(), 2u);
  const DomNode& item = doc->node(root.children[0]);
  EXPECT_EQ(item.name, "item");
  ASSERT_EQ(item.attrs.size(), 1u);
  EXPECT_EQ(item.attrs[0].value, "1");
  EXPECT_EQ(doc->TextContent(root.children[0]), "T&V");
  EXPECT_EQ(doc->node(root.children[1]).children.size(), 0u);
}

TEST(DomTest, SerializeRoundTrip) {
  std::string input = "<a x=\"1\"><b>t</b><c/></a>";
  auto doc = ParseDocument(input);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Serialize(doc->root()), input);
}

TEST(DomTest, SkipsPrologAndWhitespace) {
  auto doc = ParseDocument(
      "<?xml version=\"1.0\"?>\n<!DOCTYPE a>\n<a>\n  <b/>\n</a>\n");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node(doc->root()).children.size(), 1u);
}

TEST(DomTest, MemoryBudgetExceeded) {
  std::string big = "<r>";
  for (int i = 0; i < 1000; ++i) big += "<x>some text content here</x>";
  big += "</r>";
  ParseOptions opts;
  opts.memory_budget = 4096;
  auto doc = ParseDocument(big, opts);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  // And without a budget it parses fine.
  EXPECT_TRUE(ParseDocument(big).ok());
}

TEST(DomTest, ApproxBytesGrowsWithDocument) {
  auto small = ParseDocument("<a/>");
  auto large = ParseDocument("<a><b>xxxxxxxxxxxxxxxxxxxxxx</b><c/><d/></a>");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->approx_bytes(), small->approx_bytes());
}

TEST(DomTest, RejectsMultipleRoots) {
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
}

}  // namespace
}  // namespace smpx::xml
