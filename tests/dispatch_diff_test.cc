// Differential tests for the interned-dispatch/span-scanning fast path
// against the legacy map-dispatch/per-byte baseline
// (TableOptions::use_map_dispatch): over generator output and hand-built
// edge documents, both engine paths must produce byte-identical
// projections and identical match/jump statistics.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/prefilter.h"
#include "simd/bitmap_plane.h"
#include "simd/simd.h"
#include "xml/tokenizer.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::core {
namespace {

struct DualPrefilter {
  Prefilter interned;
  Prefilter map_based;
};

DualPrefilter CompileBoth(dtd::Dtd dtd, std::string_view path_list,
                          bool allow_recursion = false) {
  auto paths = paths::ProjectionPath::ParseList(path_list);
  EXPECT_TRUE(paths.ok()) << paths.status().ToString();

  CompileOptions interned_opts;
  interned_opts.allow_recursion = allow_recursion;
  CompileOptions map_opts = interned_opts;
  map_opts.tables.use_map_dispatch = true;

  auto a = Prefilter::Compile(dtd, *paths, interned_opts);
  EXPECT_TRUE(a.ok()) << a.status().ToString();
  auto b = Prefilter::Compile(std::move(dtd), *paths, map_opts);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a->interned_dispatch());
  EXPECT_FALSE(b->interned_dispatch());
  return {std::move(*a), std::move(*b)};
}

/// Runs both paths over `doc` and asserts byte-identical output plus
/// identical semantic counters (matches, false matches, jumps).
void ExpectIdentical(const DualPrefilter& pf, std::string_view doc,
                     const EngineOptions& opts = {}) {
  RunStats interned_stats;
  RunStats map_stats;
  auto out_interned = pf.interned.RunOnBuffer(doc, &interned_stats, opts);
  auto out_map = pf.map_based.RunOnBuffer(doc, &map_stats, opts);
  ASSERT_TRUE(out_interned.ok()) << out_interned.status().ToString();
  ASSERT_TRUE(out_map.ok()) << out_map.status().ToString();
  ASSERT_EQ(*out_interned, *out_map);
  EXPECT_EQ(interned_stats.matches, map_stats.matches);
  EXPECT_EQ(interned_stats.false_matches, map_stats.false_matches);
  EXPECT_EQ(interned_stats.initial_jump_chars, map_stats.initial_jump_chars);
  EXPECT_EQ(interned_stats.input_bytes, map_stats.input_bytes);
}

TEST(DispatchDiffTest, XmarkGeneratorOutputIsByteIdentical) {
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 1 << 20;
  std::string doc = xmlgen::GenerateXmark(gen);
  const char* workloads[] = {
      "/site/people/person@ /site/people/person/name#",
      "/site/open_auctions/open_auction/bidder/increase#",
      "/site/regions//item@",
      "//description //annotation //emailaddress",
      "/site/closed_auctions/closed_auction/price#",
  };
  for (const char* paths : workloads) {
    SCOPED_TRACE(paths);
    DualPrefilter pf = CompileBoth(xmlgen::XmarkDtd(), paths);
    ExpectIdentical(pf, doc);
  }
}

TEST(DispatchDiffTest, MedlineGeneratorOutputIsByteIdentical) {
  xmlgen::MedlineOptions gen;
  gen.target_bytes = 1 << 20;
  std::string doc = xmlgen::GenerateMedline(gen);
  const char* workloads[] = {
      "/MedlineCitationSet//CollectionTitle#",
      "/MedlineCitationSet//DataBank/DataBankName# "
      "/MedlineCitationSet//DataBank/AccessionNumberList#",
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#",
  };
  for (const char* paths : workloads) {
    SCOPED_TRACE(paths);
    DualPrefilter pf = CompileBoth(xmlgen::MedlineDtd(), paths);
    ExpectIdentical(pf, doc);
  }
}

TEST(DispatchDiffTest, SmallWindowStreamingStaysIdentical) {
  // Window refills hit the span-boundary fallbacks of the bulk scanner;
  // a tiny window forces them constantly.
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 200 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);
  DualPrefilter pf =
      CompileBoth(xmlgen::XmarkDtd(), "/site/regions//item/name#");
  for (size_t window : {64u, 256u, 4096u}) {
    SCOPED_TRACE(window);
    EngineOptions opts;
    opts.window_capacity = window;
    ExpectIdentical(pf, doc, opts);
  }
}

constexpr char kBachelorDtd[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";

TEST(DispatchDiffTest, BachelorTagsUnderSpanScanner) {
  DualPrefilter pf = CompileBoth(
      *dtd::Dtd::Parse(kBachelorDtd), "/a/b#");
  // Bachelor forms in every position the Fig. 4 bachelor case covers:
  // entry tag, shielded region, whitespace before the slash, attributes.
  for (const char* doc : {
           "<a><b/><c><b/></c></a>",
           "<a/>",
           "<a><b    /><b>x</b></a>",
           "<a><c><b/><b/></c><b/></a>",
       }) {
    SCOPED_TRACE(doc);
    ExpectIdentical(pf, doc);
  }
}

TEST(DispatchDiffTest, QuotedAttributeEdgeCases) {
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>"
      " <!ATTLIST b note CDATA #IMPLIED other CDATA #IMPLIED> ]>";
  DualPrefilter pf = CompileBoth(*dtd::Dtd::Parse(dtd), "/a/b#@");
  for (const char* doc : {
           "<a><b note='x>y'>t</b></a>",
           "<a><b note=\"a'b>c\" other='d\"e>f'>t</b></a>",
           "<a><b note='' other=\"\">t</b></a>",
           "<a><b note='>>>/>'/></a>",
       }) {
    SCOPED_TRACE(doc);
    ExpectIdentical(pf, doc);
    auto out = pf.interned.RunOnBuffer(doc);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(xml::CheckWellFormed(*out).ok()) << *out;
  }
}

constexpr char kRecursiveDtd[] = R"(<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (australia)>
<!ELEMENT australia (item*)>
<!ELEMENT item (name, description, shipping)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT parlist (listitem*)>
<!ELEMENT listitem (text | parlist)>
<!ELEMENT shipping (#PCDATA)>
]>)";

constexpr char kRecursiveDoc[] =
    "<site><regions><australia>"
    "<item><name>alpha</name><description><parlist>"
    "<listitem><text>a1</text></listitem>"
    "<listitem><parlist><listitem><text>deep</text></listitem></parlist>"
    "</listitem></parlist></description><shipping>fast</shipping></item>"
    "<item><name>beta</name><description><text>flat</text></description>"
    "<shipping>slow</shipping></item>"
    "</australia></regions></site>";

TEST(DispatchDiffTest, CountNestingRecursionUnderSpanScanner) {
  // Opaque recursive regions: the balance counter must see nested opening
  // tags through the interned id comparison exactly as through the string
  // comparison of the legacy path.
  for (const char* paths : {"//description#", "//shipping#", "//name#"}) {
    SCOPED_TRACE(paths);
    DualPrefilter pf = CompileBoth(*dtd::Dtd::Parse(kRecursiveDtd), paths,
                                   /*allow_recursion=*/true);
    ExpectIdentical(pf, kRecursiveDoc);
  }
  // And through a tiny window, where the balance spans many refills.
  DualPrefilter pf = CompileBoth(*dtd::Dtd::Parse(kRecursiveDtd),
                                 "//shipping#", /*allow_recursion=*/true);
  EngineOptions opts;
  opts.window_capacity = 64;
  ExpectIdentical(pf, kRecursiveDoc, opts);
}

// --- SIMD tier replay --------------------------------------------------------
// The same compiled prefilter replayed under every available dispatch tier
// (SetIsa) must produce byte-identical output AND identical statistics --
// including matcher comparisons/shifts and scan_chars -- with the scalar
// tier as the oracle. Tiers only change how fast structural bytes are
// found, never which bytes are found.

TEST(DispatchDiffTest, EveryIsaTierMatchesScalarByteForByte) {
  const simd::Isa saved = simd::ActiveIsa();
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 512 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/site/people/person@ /site/people/person/name# //description");
  ASSERT_TRUE(paths.ok());
  auto pf = Prefilter::Compile(xmlgen::XmarkDtd(), *paths, {});
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();

  simd::SetIsa(simd::Isa::kScalar);
  RunStats ref_stats;
  auto ref = pf->RunOnBuffer(doc, &ref_stats);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(simd::IsaName(isa));
    ASSERT_EQ(simd::SetIsa(isa), isa);
    RunStats stats;
    auto out = pf->RunOnBuffer(doc, &stats);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(*out, *ref);
    EXPECT_EQ(stats.matches, ref_stats.matches);
    EXPECT_EQ(stats.false_matches, ref_stats.false_matches);
    EXPECT_EQ(stats.scan_chars, ref_stats.scan_chars);
    EXPECT_EQ(stats.search.comparisons, ref_stats.search.comparisons);
    EXPECT_EQ(stats.search.shifts, ref_stats.search.shifts);
    EXPECT_EQ(stats.search.shift_chars, ref_stats.search.shift_chars);
    EXPECT_EQ(stats.bm_searches, ref_stats.bm_searches);
    EXPECT_EQ(stats.cw_searches, ref_stats.cw_searches);
    EXPECT_EQ(stats.initial_jump_chars, ref_stats.initial_jump_chars);
  }
  simd::SetIsa(saved);
}

// The SWAR and SIMD matcher skip-loop tiers enumerate identical candidate
// sequences, so output and search stats must match exactly; the classical
// loops (skip loops disabled) must still agree on output and semantic
// counters (their shift accounting legitimately differs).
TEST(DispatchDiffTest, MatcherSkipModeTiersAgree) {
  xmlgen::MedlineOptions gen;
  gen.target_bytes = 512 << 10;
  std::string doc = xmlgen::GenerateMedline(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/MedlineCitationSet//DataBank/DataBankName# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#");
  ASSERT_TRUE(paths.ok());

  auto compile = [&](strmatch::SkipLoopMode mode, bool disable) {
    CompileOptions opts;
    opts.tables.matcher_skip_mode = mode;
    opts.tables.disable_matcher_skip_loops = disable;
    auto pf = Prefilter::Compile(xmlgen::MedlineDtd(), *paths, opts);
    EXPECT_TRUE(pf.ok()) << pf.status().ToString();
    return std::move(*pf);
  };
  Prefilter simd_pf = compile(strmatch::SkipLoopMode::kSimd, false);
  Prefilter swar_pf = compile(strmatch::SkipLoopMode::kSwar, false);
  Prefilter classic_pf = compile(strmatch::SkipLoopMode::kSimd, true);

  RunStats simd_stats, swar_stats, classic_stats;
  auto out_simd = simd_pf.RunOnBuffer(doc, &simd_stats);
  auto out_swar = swar_pf.RunOnBuffer(doc, &swar_stats);
  auto out_classic = classic_pf.RunOnBuffer(doc, &classic_stats);
  ASSERT_TRUE(out_simd.ok() && out_swar.ok() && out_classic.ok());
  ASSERT_EQ(*out_simd, *out_swar);
  ASSERT_EQ(*out_simd, *out_classic);
  EXPECT_EQ(simd_stats.search.comparisons, swar_stats.search.comparisons);
  EXPECT_EQ(simd_stats.search.shifts, swar_stats.search.shifts);
  EXPECT_EQ(simd_stats.search.shift_chars, swar_stats.search.shift_chars);
  EXPECT_EQ(simd_stats.matches, swar_stats.matches);
  EXPECT_EQ(simd_stats.false_matches, swar_stats.false_matches);
  EXPECT_EQ(simd_stats.bm_searches, swar_stats.bm_searches);
  EXPECT_EQ(simd_stats.cw_searches, swar_stats.cw_searches);
  EXPECT_EQ(simd_stats.matches, classic_stats.matches);
  EXPECT_EQ(simd_stats.false_matches, classic_stats.false_matches);
}

// --- BitmapPlane on/off ------------------------------------------------------
// The shared structural bitmap plane (TableOptions::use_bitmap_plane) is a
// pure throughput change: classify-once-bit-walk must produce byte-identical
// projections and identical statistics -- including matcher comparisons,
// shifts, and shift_chars (the CW second-byte precheck does its own stats
// bookkeeping for candidates it kills) -- against the per-call kernel path,
// under every dispatch tier and window geometry.

void ExpectPlaneParity(const Prefilter& on, const Prefilter& off,
                       std::string_view doc, const EngineOptions& opts = {}) {
  RunStats on_stats, off_stats;
  auto out_on = on.RunOnBuffer(doc, &on_stats, opts);
  auto out_off = off.RunOnBuffer(doc, &off_stats, opts);
  ASSERT_TRUE(out_on.ok()) << out_on.status().ToString();
  ASSERT_TRUE(out_off.ok()) << out_off.status().ToString();
  ASSERT_EQ(*out_on, *out_off);
  EXPECT_EQ(on_stats.matches, off_stats.matches);
  EXPECT_EQ(on_stats.false_matches, off_stats.false_matches);
  EXPECT_EQ(on_stats.scan_chars, off_stats.scan_chars);
  EXPECT_EQ(on_stats.search.comparisons, off_stats.search.comparisons);
  EXPECT_EQ(on_stats.search.shifts, off_stats.search.shifts);
  EXPECT_EQ(on_stats.search.shift_chars, off_stats.search.shift_chars);
  EXPECT_EQ(on_stats.bm_searches, off_stats.bm_searches);
  EXPECT_EQ(on_stats.cw_searches, off_stats.cw_searches);
  EXPECT_EQ(on_stats.initial_jump_chars, off_stats.initial_jump_chars);
  EXPECT_EQ(on_stats.input_bytes, off_stats.input_bytes);
}

TEST(DispatchDiffTest, BitmapPlaneOnOffIdenticalUnderEveryTier) {
  const simd::Isa saved = simd::ActiveIsa();
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 512 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/site/people/person@ /site/people/person/name# //description");
  ASSERT_TRUE(paths.ok());
  CompileOptions on_opts;
  on_opts.tables.use_bitmap_plane = true;
  CompileOptions off_opts;
  off_opts.tables.use_bitmap_plane = false;
  auto on = Prefilter::Compile(xmlgen::XmarkDtd(), *paths, on_opts);
  auto off = Prefilter::Compile(xmlgen::XmarkDtd(), *paths, off_opts);
  ASSERT_TRUE(on.ok() && off.ok());
  for (simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(simd::IsaName(isa));
    ASSERT_EQ(simd::SetIsa(isa), isa);
    ExpectPlaneParity(*on, *off, doc);
  }
  simd::SetIsa(saved);
}

TEST(DispatchDiffTest, BitmapPlaneSmallWindowStreamingStaysIdentical) {
  // Window slides rebind the plane (epoch bumps) on every refill; tiny
  // windows force constant invalidation plus append-rebinds in between.
  xmlgen::MedlineOptions gen;
  gen.target_bytes = 200 << 10;
  std::string doc = xmlgen::GenerateMedline(gen);
  auto paths = paths::ProjectionPath::ParseList(
      "/MedlineCitationSet//DataBank/DataBankName# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#");
  ASSERT_TRUE(paths.ok());
  CompileOptions on_opts;
  on_opts.tables.use_bitmap_plane = true;
  CompileOptions off_opts;
  off_opts.tables.use_bitmap_plane = false;
  auto on = Prefilter::Compile(xmlgen::MedlineDtd(), *paths, on_opts);
  auto off = Prefilter::Compile(xmlgen::MedlineDtd(), *paths, off_opts);
  ASSERT_TRUE(on.ok() && off.ok());
  for (size_t window : {64u, 256u, 4096u}) {
    SCOPED_TRACE(window);
    EngineOptions opts;
    opts.window_capacity = window;
    ExpectPlaneParity(*on, *off, doc, opts);
  }
}

TEST(DispatchDiffTest, ProcessWidePlaneDisableMatchesPlaneOffTables) {
  // The CI force-disabled path: SetPlaneEnabled(false) must make
  // plane-compiled tables behave exactly like use_bitmap_plane = false.
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 128 << 10;
  std::string doc = xmlgen::GenerateXmark(gen);
  auto paths =
      paths::ProjectionPath::ParseList("/site/regions//item/name#");
  ASSERT_TRUE(paths.ok());
  CompileOptions plane_opts;
  plane_opts.tables.use_bitmap_plane = true;
  auto pf = Prefilter::Compile(xmlgen::XmarkDtd(), *paths, plane_opts);
  ASSERT_TRUE(pf.ok());
  RunStats on_stats;
  auto out_on = pf->RunOnBuffer(doc, &on_stats);
  ASSERT_TRUE(out_on.ok());
  simd::SetPlaneEnabled(false);
  RunStats disabled_stats;
  auto out_disabled = pf->RunOnBuffer(doc, &disabled_stats);
  simd::SetPlaneEnabled(true);
  ASSERT_TRUE(out_disabled.ok());
  ASSERT_EQ(*out_on, *out_disabled);
  EXPECT_EQ(on_stats.matches, disabled_stats.matches);
  EXPECT_EQ(on_stats.search.comparisons, disabled_stats.search.comparisons);
  EXPECT_EQ(on_stats.search.shifts, disabled_stats.search.shifts);
  EXPECT_EQ(on_stats.search.shift_chars, disabled_stats.search.shift_chars);
}

TEST(DispatchDiffTest, PrologAndDoctypeUnderSpanScanner) {
  DualPrefilter pf = CompileBoth(*dtd::Dtd::Parse(kBachelorDtd), "/a/b#");
  std::string long_comment(5000, 'x');
  for (const std::string& prolog : {
           std::string("<?xml version=\"1.0\"?>\n"),
           std::string("<?xml version=\"1.0\"?>\n<!-- c --->\n"),
           std::string("<!-- ") + long_comment + " -->\n",
           std::string("<!DOCTYPE a [ <!ELEMENT a (b|c)*> ]>\n"),
           std::string("<?pi data?><!-- x --><!DOCTYPE a []>"),
       }) {
    SCOPED_TRACE(prolog);
    std::string doc = prolog + "<a><b>x</b></a>";
    ExpectIdentical(pf, doc);
    auto out = pf.interned.RunOnBuffer(doc);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, "<a><b>x</b></a>");
  }
}

}  // namespace
}  // namespace smpx::core
