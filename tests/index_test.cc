// Exhaustive tests for the boundary skip-index and its cursors:
//  - random access at EVERY top-level boundary of XMark and MEDLINE
//    documents (granularity-1 index) drains byte-identically to the
//    corresponding suffix of the serial projection, with the index's
//    projection offsets agreeing with the drained byte counts;
//  - the granularity-1 entry offsets are exactly the tokenizer's
//    top-level element starts;
//  - cursor pagination (Next) re-assembles the serial projection from
//    spans, and serialized cursor tokens restore mid-stream without
//    losing or duplicating a byte;
//  - persistence round-trips through Save/Load; corrupted, truncated,
//    version-bumped, stale-digest, and stale-tables index files (and
//    tampered cursor tokens) all fail closed with a clear Status, never
//    wrong bytes.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/io.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/thread_pool.h"
#include "xml/tokenizer.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::index {
namespace {

core::Prefilter CompileXmark() {
  auto paths = paths::ProjectionPath::ParseList(
      "/site/people/person@ /site/people/person/name#");
  EXPECT_TRUE(paths.ok());
  auto pf = core::Prefilter::Compile(xmlgen::XmarkDtd(), std::move(*paths));
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

core::Prefilter CompileMedline() {
  auto paths = paths::ProjectionPath::ParseList(
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
      "/MedlineCitationSet/MedlineCitation/DateCompleted#");
  EXPECT_TRUE(paths.ok());
  auto pf = core::Prefilter::Compile(xmlgen::MedlineDtd(), std::move(*paths));
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

std::string XmarkDoc(uint64_t bytes) {
  xmlgen::XmarkOptions gen;
  gen.target_bytes = bytes;
  gen.seed = 5;
  return xmlgen::GenerateXmark(gen);
}

std::string MedlineDoc(uint64_t bytes) {
  xmlgen::MedlineOptions gen;
  gen.target_bytes = bytes;
  gen.seed = 5;
  return xmlgen::GenerateMedline(gen);
}

/// Byte offsets of every top-level element start per the full tokenizer;
/// ground truth for the granularity-1 entry set.
std::vector<uint64_t> TokenizerTopLevelStarts(std::string_view doc) {
  std::vector<uint64_t> starts;
  xml::Tokenizer tok(doc);
  xml::Token t;
  int64_t depth = 0;
  while (tok.Next(&t)) {
    switch (t.type) {
      case xml::TokenType::kStartTag:
        if (depth == 1) starts.push_back(t.begin);
        ++depth;
        break;
      case xml::TokenType::kEmptyTag:
        if (depth == 1) starts.push_back(t.begin);
        break;
      case xml::TokenType::kEndTag:
        --depth;
        break;
      default:
        break;
    }
  }
  return starts;
}

Result<BoundaryIndex> BuildEveryBoundary(const core::Prefilter& pf,
                                         const std::string& doc) {
  parallel::ThreadPool pool(3);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 1;
  return BoundaryIndex::Build(pf.tables(), doc, &pool, opts);
}

/// The core differential property at every boundary of `doc`.
void ExpectEveryBoundaryResumes(const core::Prefilter& pf,
                                const std::string& doc) {
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_EQ(idx->doc_size(), doc.size());

  std::vector<uint64_t> truth = TokenizerTopLevelStarts(doc);
  ASSERT_FALSE(truth.empty());
  ASSERT_EQ(idx->entries().size(), truth.size())
      << "granularity-1 index must hold every top-level boundary";
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(idx->entries()[i].offset, truth[i]) << "entry " << i;
  }

  for (size_t i = 0; i < idx->entries().size(); ++i) {
    const IndexEntry& e = idx->entries()[i];
    auto cur = Cursor::OpenAt(*idx, pf.tables(), doc, e.offset);
    ASSERT_TRUE(cur.ok()) << cur.status().ToString();
    EXPECT_EQ(cur->position(), e.offset);
    EXPECT_EQ(cur->output_position(), e.out_offset);
    ASSERT_LE(e.out_offset, serial->size()) << "entry " << i;
    StringSink sink;
    ASSERT_TRUE(cur->Drain(&sink).ok());
    EXPECT_EQ(sink.str(), serial->substr(static_cast<size_t>(e.out_offset)))
        << "resume at boundary " << i << " (offset " << e.offset
        << ") diverged from the serial suffix";
    EXPECT_TRUE(cur->at_end());
    EXPECT_EQ(cur->output_position(), serial->size());
  }
}

TEST(BoundaryIndexTest, XmarkEveryBoundaryResumesByteIdentically) {
  core::Prefilter pf = CompileXmark();
  ExpectEveryBoundaryResumes(pf, XmarkDoc(16 << 10));
}

TEST(BoundaryIndexTest, MedlineEveryBoundaryResumesByteIdentically) {
  core::Prefilter pf = CompileMedline();
  ExpectEveryBoundaryResumes(pf, MedlineDoc(16 << 10));
}

TEST(BoundaryIndexTest, OpenAtMidRecordTargetsResumeAtPrecedingBoundary) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(8 << 10);
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  ASSERT_GE(idx->entries().size(), 3u);

  // A target strictly inside span i opens at entry i; a target before the
  // first boundary resumes from the document start.
  const IndexEntry& e1 = idx->entries()[1];
  uint64_t mid = e1.offset + (idx->entries()[2].offset - e1.offset) / 2;
  auto cur = Cursor::OpenAt(*idx, pf.tables(), doc, mid);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(cur->position(), e1.offset);

  auto head = Cursor::OpenAt(*idx, pf.tables(), doc, 0);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->position(), 0u);
  EXPECT_EQ(head->output_position(), 0u);
  StringSink sink;
  ASSERT_TRUE(head->Drain(&sink).ok());
  EXPECT_EQ(sink.str(), *serial);

  // Past the last boundary: open at the last entry; past the end: same.
  auto tail = Cursor::OpenAt(*idx, pf.tables(), doc, doc.size() + 1000);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->position(), idx->entries().back().offset);
}

TEST(BoundaryIndexTest, PaginationReassemblesTheSerialProjection) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(8 << 10);
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  const size_t spans = idx->entries().size() + 1;

  for (size_t step : {size_t{1}, size_t{2}, size_t{5}}) {
    auto cur = Cursor::OpenAt(*idx, pf.tables(), doc, 0);
    ASSERT_TRUE(cur.ok());
    StringSink sink;
    size_t consumed = 0;
    while (!cur->at_end()) {
      auto n = cur->Next(step, &sink);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      ASSERT_GT(*n, 0u);
      consumed += *n;
      ASSERT_LE(consumed, spans);
    }
    EXPECT_EQ(consumed, spans) << "step=" << step;
    EXPECT_EQ(sink.str(), *serial) << "step=" << step;
    // At the end, Next is a no-op reporting zero spans.
    auto n = cur->Next(step, &sink);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
  }
}

TEST(BoundaryIndexTest, CursorTokensRestoreMidStream) {
  core::Prefilter pf = CompileXmark();
  std::string doc = XmarkDoc(8 << 10);
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());

  // Walk one span at a time; at every pause, a restored token must drain
  // to exactly the bytes the original cursor would drain to.
  auto cur = Cursor::OpenAt(*idx, pf.tables(), doc, 0);
  ASSERT_TRUE(cur.ok());
  StringSink walked;
  while (!cur->at_end()) {
    std::string token = cur->SaveToken();
    auto restored = Cursor::Restore(*idx, pf.tables(), doc, token);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->position(), cur->position());
    EXPECT_EQ(restored->output_position(), cur->output_position());
    StringSink rest;
    ASSERT_TRUE(restored->Drain(&rest).ok());
    EXPECT_EQ(walked.str() + rest.str(), *serial)
        << "token restored at position " << cur->position()
        << " lost or duplicated bytes";
    auto n = cur->Next(1, &walked);
    ASSERT_TRUE(n.ok());
  }
  EXPECT_EQ(walked.str(), *serial);

  // A token saved at the very end restores to an at-end cursor.
  auto done = Cursor::Restore(*idx, pf.tables(), doc, cur->SaveToken());
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->at_end());
  StringSink empty;
  ASSERT_TRUE(done->Drain(&empty).ok());
  EXPECT_TRUE(empty.str().empty());
}

TEST(BoundaryIndexTest, SaveLoadRoundTripPreservesEverything) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(8 << 10);
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  std::string bytes = idx->Serialize();

  auto loaded = BoundaryIndex::Load(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->doc_size(), idx->doc_size());
  EXPECT_EQ(loaded->doc_digest(), idx->doc_digest());
  EXPECT_EQ(loaded->tables_fingerprint(), idx->tables_fingerprint());
  ASSERT_EQ(loaded->entries().size(), idx->entries().size());
  for (size_t i = 0; i < idx->entries().size(); ++i) {
    const IndexEntry& a = idx->entries()[i];
    const IndexEntry& b = loaded->entries()[i];
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.out_offset, b.out_offset);
    EXPECT_EQ(a.checkpoint.state, b.checkpoint.state);
    EXPECT_EQ(a.checkpoint.cursor, b.checkpoint.cursor);
    EXPECT_EQ(a.checkpoint.nesting_depth, b.checkpoint.nesting_depth);
    EXPECT_EQ(a.checkpoint.copy_depth, b.checkpoint.copy_depth);
    EXPECT_EQ(a.checkpoint.copy_flushed, b.checkpoint.copy_flushed);
    EXPECT_EQ(a.checkpoint.prolog_done, b.checkpoint.prolog_done);
    EXPECT_EQ(a.checkpoint.jump_pending, b.checkpoint.jump_pending);
  }
  ASSERT_TRUE(loaded->Matches(doc, pf.tables()).ok());

  // And a cursor over the LOADED index serves the same bytes.
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  const IndexEntry& mid = loaded->entries()[loaded->entries().size() / 2];
  auto cur = Cursor::OpenAt(*loaded, pf.tables(), doc, mid.offset);
  ASSERT_TRUE(cur.ok());
  StringSink sink;
  ASSERT_TRUE(cur->Drain(&sink).ok());
  EXPECT_EQ(sink.str(), serial->substr(static_cast<size_t>(mid.out_offset)));
}

TEST(BoundaryIndexTest, EveryTruncationAndByteFlipFailsClosed) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(2 << 10);
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  std::string bytes = idx->Serialize();
  ASSERT_TRUE(BoundaryIndex::Load(bytes).ok());

  for (size_t len = 0; len < bytes.size(); ++len) {
    auto r = BoundaryIndex::Load(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes loaded";
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    auto r = BoundaryIndex::Load(mutated);
    EXPECT_FALSE(r.ok()) << "flip at byte " << i << " loaded";
  }
  {
    std::string padded = bytes + "x";
    EXPECT_FALSE(BoundaryIndex::Load(padded).ok()) << "trailing junk loaded";
  }
}

TEST(BoundaryIndexTest, StaleDigestAndStaleTablesFailClosed) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(4 << 10);
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());

  // Same size, one content byte changed: the digest must catch it.
  std::string mutated = doc;
  size_t text_pos = mutated.find("</");  // flip inside preceding text/tag
  ASSERT_NE(text_pos, std::string::npos);
  mutated[text_pos + 1] = mutated[text_pos + 1] == 'X' ? 'Y' : 'X';
  Status stale = idx->Matches(mutated, pf.tables());
  EXPECT_FALSE(stale.ok());
  EXPECT_NE(stale.ToString().find("digest"), std::string::npos)
      << stale.ToString();
  EXPECT_FALSE(
      Cursor::OpenAt(*idx, pf.tables(), mutated, 0).ok());

  // A different document size fails before hashing.
  EXPECT_FALSE(idx->Matches(doc + " ", pf.tables()).ok());

  // Same document, different compiled tables (different projection
  // paths): the fingerprint must catch it.
  auto other_paths = paths::ProjectionPath::ParseList(
      "/MedlineCitationSet/MedlineCitation/Article#");
  ASSERT_TRUE(other_paths.ok());
  auto other =
      core::Prefilter::Compile(xmlgen::MedlineDtd(), std::move(*other_paths));
  ASSERT_TRUE(other.ok());
  Status wrong_tables = idx->Matches(doc, other->tables());
  EXPECT_FALSE(wrong_tables.ok());
  EXPECT_NE(wrong_tables.ToString().find("tables"), std::string::npos);
  EXPECT_FALSE(Cursor::OpenAt(*idx, other->tables(), doc, 0).ok());

  // The original triple still opens.
  EXPECT_TRUE(Cursor::OpenAt(*idx, pf.tables(), doc, 0).ok());
}

TEST(BoundaryIndexTest, TamperedAndForeignTokensFailClosed) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(4 << 10);
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  auto cur = Cursor::OpenAt(*idx, pf.tables(), doc, doc.size() / 2);
  ASSERT_TRUE(cur.ok());
  std::string token = cur->SaveToken();
  ASSERT_TRUE(Cursor::Restore(*idx, pf.tables(), doc, token).ok());

  for (size_t i = 0; i < token.size(); ++i) {
    std::string mutated = token;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    EXPECT_FALSE(Cursor::Restore(*idx, pf.tables(), doc, mutated).ok())
        << "tampered token byte " << i << " restored";
  }
  for (size_t len = 0; len < token.size(); ++len) {
    EXPECT_FALSE(Cursor::Restore(*idx, pf.tables(), doc,
                                 std::string_view(token).substr(0, len))
                     .ok())
        << "truncated token of " << len << " bytes restored";
  }

  // A token minted over a different document cannot cross over.
  std::string other_doc = MedlineDoc(5 << 10);
  auto other_idx = BuildEveryBoundary(pf, other_doc);
  ASSERT_TRUE(other_idx.ok());
  auto other_cur =
      Cursor::OpenAt(*other_idx, pf.tables(), other_doc, 100);
  ASSERT_TRUE(other_cur.ok());
  EXPECT_FALSE(
      Cursor::Restore(*idx, pf.tables(), doc, other_cur->SaveToken()).ok());
}

TEST(BoundaryIndexTest, BoundarylessDocumentsStillServeCursors) {
  // A document whose root has no element children yields an entry-less
  // index; every OpenAt degenerates to a serial run from the start.
  auto dtd = dtd::Dtd::Parse(
      "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]>");
  ASSERT_TRUE(dtd.ok());
  auto paths = paths::ProjectionPath::ParseList("/a#");
  ASSERT_TRUE(paths.ok());
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*paths));
  ASSERT_TRUE(pf.ok());
  std::string doc = "<a>just text, no children</a>";
  auto serial = pf->RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());

  parallel::ThreadPool pool(2);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 1;
  auto idx = BoundaryIndex::Build(pf->tables(), doc, &pool, opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_TRUE(idx->entries().empty());

  auto cur = Cursor::OpenAt(*idx, pf->tables(), doc, doc.size() / 2);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(cur->position(), 0u);
  StringSink sink;
  ASSERT_TRUE(cur->Drain(&sink).ok());
  EXPECT_EQ(sink.str(), *serial);
}

TEST(BoundaryIndexTest, BuildFailsOnDocumentsThatDoNotPrefilter) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(4 << 10);
  doc.resize(doc.size() / 2);  // truncated document: serial run fails too
  parallel::ThreadPool pool(2);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 256;
  auto idx = BoundaryIndex::Build(pf.tables(), doc, &pool, opts);
  EXPECT_FALSE(idx.ok());
}

TEST(BoundaryIndexTest, CoarseGranularityMatchesFineResumes) {
  // A coarse index is a subset of resume points; every coarse entry must
  // behave exactly like the corresponding fine entry.
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(16 << 10);
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  parallel::ThreadPool pool(3);
  BoundaryIndexOptions coarse_opts;
  coarse_opts.granularity_bytes = 2048;
  auto coarse = BoundaryIndex::Build(pf.tables(), doc, &pool, coarse_opts);
  ASSERT_TRUE(coarse.ok());
  auto fine = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(fine.ok());
  ASSERT_FALSE(coarse->entries().empty());
  EXPECT_LT(coarse->entries().size(), fine->entries().size());

  for (const IndexEntry& e : coarse->entries()) {
    int64_t j = fine->FindEntry(e.offset);
    ASSERT_GE(j, 0);
    const IndexEntry& f = fine->entries()[static_cast<size_t>(j)];
    EXPECT_EQ(f.offset, e.offset);
    EXPECT_EQ(f.out_offset, e.out_offset);
    EXPECT_EQ(f.checkpoint.state, e.checkpoint.state);
    EXPECT_EQ(f.checkpoint.cursor, e.checkpoint.cursor);
    auto cur = Cursor::OpenAt(*coarse, pf.tables(), doc, e.offset);
    ASSERT_TRUE(cur.ok());
    StringSink sink;
    ASSERT_TRUE(cur->Drain(&sink).ok());
    EXPECT_EQ(sink.str(),
              serial->substr(static_cast<size_t>(e.out_offset)));
  }
}

TEST(BoundaryIndexTest, RecordOrdinalsMatchTokenizerTruth) {
  // With a granularity-1 index, entry i is the boundary of top-level
  // record i: ordinals must be exactly 0, 1, 2, ...; coarse indexes must
  // carry the same ordinal the fine index has at the same offset.
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(16 << 10);
  auto fine = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(fine.ok());
  for (size_t i = 0; i < fine->entries().size(); ++i) {
    EXPECT_EQ(fine->entries()[i].record_ordinal, i) << "entry " << i;
  }

  parallel::ThreadPool pool(3);
  BoundaryIndexOptions coarse_opts;
  coarse_opts.granularity_bytes = 2048;
  auto coarse = BoundaryIndex::Build(pf.tables(), doc, &pool, coarse_opts);
  ASSERT_TRUE(coarse.ok());
  ASSERT_FALSE(coarse->entries().empty());
  for (const IndexEntry& e : coarse->entries()) {
    int64_t j = fine->FindEntry(e.offset);
    ASSERT_GE(j, 0);
    EXPECT_EQ(e.record_ordinal,
              fine->entries()[static_cast<size_t>(j)].record_ordinal)
        << "offset " << e.offset;
  }
}

TEST(BoundaryIndexTest, FindRecordAndOpenAtRecordPaginateBySerialRecord) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(8 << 10);
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  const size_t n = idx->entries().size();
  ASSERT_GE(n, 3u);

  // FindRecord mirrors FindEntry's semantics in record space.
  EXPECT_EQ(idx->FindRecord(0), 0);
  EXPECT_EQ(idx->FindRecord(1), 1);
  EXPECT_EQ(idx->FindRecord(n - 1), static_cast<int64_t>(n - 1));
  EXPECT_EQ(idx->FindRecord(n + 1000), static_cast<int64_t>(n - 1));

  // Opening at record k resumes exactly at boundary k and drains the
  // serial suffix; record_position() reports k.
  for (uint64_t k : {uint64_t{0}, uint64_t{1}, static_cast<uint64_t>(n / 2),
                     static_cast<uint64_t>(n - 1)}) {
    auto cur = Cursor::OpenAtRecord(*idx, pf.tables(), doc, k);
    ASSERT_TRUE(cur.ok()) << cur.status().ToString();
    const IndexEntry& e = idx->entries()[static_cast<size_t>(k)];
    EXPECT_EQ(cur->position(), e.offset);
    EXPECT_EQ(cur->record_position(), k);
    StringSink sink;
    ASSERT_TRUE(cur->Drain(&sink).ok());
    EXPECT_EQ(sink.str(), serial->substr(static_cast<size_t>(e.out_offset)))
        << "record seek " << k;
  }

  // A coarse index lands on the nearest preceding indexed boundary.
  parallel::ThreadPool pool(2);
  BoundaryIndexOptions coarse_opts;
  coarse_opts.granularity_bytes = 2048;
  auto coarse = BoundaryIndex::Build(pf.tables(), doc, &pool, coarse_opts);
  ASSERT_TRUE(coarse.ok());
  ASSERT_FALSE(coarse->entries().empty());
  uint64_t target = coarse->entries().back().record_ordinal + 1;
  auto cur = Cursor::OpenAtRecord(*coarse, pf.tables(), doc, target);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(cur->position(), coarse->entries().back().offset);
  EXPECT_EQ(cur->record_position(), coarse->entries().back().record_ordinal);
}

TEST(BoundaryIndexTest, StatsPrefixCompletesResumedRunsToSerialTotals) {
  // For the chunk-split-invariant counters (matches, false matches), the
  // stored prefix plus a resumed run's own stats must equal the full
  // serial run's totals -- that is what makes seek-point stats honest.
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(8 << 10);
  core::RunStats serial_stats;
  {
    CountingSink discard;
    core::PrefilterSession s(pf.tables(), &discard, &serial_stats, {});
    ASSERT_TRUE(s.Resume(doc).ok());
    if (!s.finished()) {
      ASSERT_TRUE(s.Finish().ok());
    }
  }
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  ASSERT_GE(idx->entries().size(), 2u);

  for (size_t i : {size_t{0}, idx->entries().size() / 2,
                   idx->entries().size() - 1}) {
    auto cur = Cursor::OpenAt(*idx, pf.tables(), doc,
                              idx->entries()[i].offset);
    ASSERT_TRUE(cur.ok());
    StatsPrefix prefix = cur->stats_prefix();
    // Re-run the suffix serially to get the resumed portion's stats.
    core::RunStats suffix_stats;
    {
      CountingSink discard;
      const core::SessionCheckpoint ckpt = idx->entries()[i].checkpoint;
      core::PrefilterSession s(pf.tables(), &discard, &suffix_stats, {},
                               &ckpt);
      ASSERT_TRUE(s.Resume(doc.substr(
                              static_cast<size_t>(ckpt.feed_begin())))
                      .ok());
      if (!s.finished()) {
      ASSERT_TRUE(s.Finish().ok());
    }
    }
    core::RunStats total = suffix_stats;
    prefix.AccumulateInto(&total);
    EXPECT_EQ(total.matches, serial_stats.matches) << "entry " << i;
    EXPECT_EQ(total.false_matches, serial_stats.false_matches)
        << "entry " << i;
  }
}

TEST(BoundaryIndexTest, VersionOneFilesFailClosedAsUnsupported) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(2 << 10);
  auto idx = BuildEveryBoundary(pf, doc);
  ASSERT_TRUE(idx.ok());
  std::string bytes = idx->Serialize();
  // Rewrite the version field to 1 and re-seal the trailing hash so ONLY
  // the version check can reject it.
  bytes[8] = 1;
  std::string body = bytes.substr(0, bytes.size() - 8);
  std::string resealed = body;
  uint64_t h = Hash64(body);
  for (int i = 0; i < 8; ++i) {
    resealed.push_back(static_cast<char>((h >> (8 * i)) & 0xff));
  }
  auto r = BoundaryIndex::Load(resealed);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported)
      << r.status().ToString();
}

/// Chunked-build differential helper: entries must be identical to the
/// in-memory build's in every durable field (offsets, ordinals,
/// checkpoints, exact match counters); only the approximate search-effort
/// counters may differ, because the two builders suspend the engine with
/// different histories.
void ExpectChunkedMatchesInMemory(const core::Prefilter& pf,
                                  const std::string& doc,
                                  uint64_t granularity, uint64_t chunk) {
  parallel::ThreadPool pool(3);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = granularity;
  auto mem = BoundaryIndex::Build(pf.tables(), doc, &pool, opts);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();

  MemorySource src(doc);
  BoundaryIndexOptions copts = opts;
  copts.chunk_bytes = chunk;
  auto chunked = BoundaryIndex::Build(pf.tables(), src, nullptr, copts);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();

  EXPECT_EQ(chunked->doc_size(), mem->doc_size());
  EXPECT_EQ(chunked->doc_digest(), mem->doc_digest());
  EXPECT_EQ(chunked->tables_fingerprint(), mem->tables_fingerprint());
  ASSERT_EQ(chunked->entries().size(), mem->entries().size());
  for (size_t i = 0; i < mem->entries().size(); ++i) {
    const IndexEntry& a = mem->entries()[i];
    const IndexEntry& b = chunked->entries()[i];
    EXPECT_EQ(a.offset, b.offset) << "entry " << i;
    EXPECT_EQ(a.out_offset, b.out_offset) << "entry " << i;
    EXPECT_EQ(a.record_ordinal, b.record_ordinal) << "entry " << i;
    EXPECT_EQ(a.checkpoint.state, b.checkpoint.state) << "entry " << i;
    EXPECT_EQ(a.checkpoint.cursor, b.checkpoint.cursor) << "entry " << i;
    EXPECT_EQ(a.checkpoint.nesting_depth, b.checkpoint.nesting_depth);
    EXPECT_EQ(a.checkpoint.copy_depth, b.checkpoint.copy_depth);
    EXPECT_EQ(a.checkpoint.copy_flushed, b.checkpoint.copy_flushed);
    EXPECT_EQ(a.checkpoint.prolog_done, b.checkpoint.prolog_done);
    EXPECT_EQ(a.checkpoint.jump_pending, b.checkpoint.jump_pending);
    EXPECT_EQ(a.stats.matches, b.stats.matches) << "entry " << i;
    EXPECT_EQ(a.stats.false_matches, b.stats.false_matches) << "entry " << i;
  }
}

TEST(BoundaryIndexTest, ChunkedBuildMatchesInMemoryOnEveryDurableField) {
  core::Prefilter xm = CompileXmark();
  ExpectChunkedMatchesInMemory(xm, XmarkDoc(16 << 10), /*granularity=*/1,
                               /*chunk=*/4 << 10);
  core::Prefilter ml = CompileMedline();
  ExpectChunkedMatchesInMemory(ml, MedlineDoc(16 << 10), /*granularity=*/1,
                               /*chunk=*/4 << 10);
}

TEST(BoundaryIndexTest, ChunkedBuildsAreByteIdenticalAcrossChunkSizes) {
  // The chunked path is deterministic in itself: as long as no
  // inter-entry span exceeds the chunk, the chunk size cannot leak into
  // the file -- the engine suspends at exactly the same boundaries.
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(16 << 10);
  MemorySource src(doc);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 1;
  opts.chunk_bytes = 4 << 10;
  auto a = BoundaryIndex::Build(pf.tables(), src, nullptr, opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  opts.chunk_bytes = 8 << 10;
  auto b = BoundaryIndex::Build(pf.tables(), src, nullptr, opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Serialize(), b->Serialize());
}

TEST(BoundaryIndexTest, ChunkedBuildSurvivesSpansLargerThanTheChunk) {
  // Coarse granularity with a tiny chunk forces mid-span suspensions:
  // everything except the approximate search counters must still agree,
  // and cursors over the chunked index must serve identical bytes.
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(16 << 10);
  ExpectChunkedMatchesInMemory(pf, doc, /*granularity=*/4096,
                               /*chunk=*/256);

  MemorySource src(doc);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 4096;
  opts.chunk_bytes = 256;
  auto idx = BoundaryIndex::Build(pf.tables(), src, nullptr, opts);
  ASSERT_TRUE(idx.ok());
  auto serial = pf.RunOnBuffer(doc);
  ASSERT_TRUE(serial.ok());
  for (const IndexEntry& e : idx->entries()) {
    auto cur = Cursor::OpenAt(*idx, pf.tables(), doc, e.offset);
    ASSERT_TRUE(cur.ok()) << cur.status().ToString();
    StringSink sink;
    ASSERT_TRUE(cur->Drain(&sink).ok());
    EXPECT_EQ(sink.str(), serial->substr(static_cast<size_t>(e.out_offset)))
        << "chunked-index resume at offset " << e.offset;
  }
}

TEST(BoundaryIndexTest, ChunkedBuildFromFileSourceNeverMapsTheDocument) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(16 << 10);
  std::string path = "/tmp/smpx_chunked_index_input.xml";
  ASSERT_TRUE(WriteStringToFile(path, doc).ok());
  auto src = FileSource::Open(path);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  ASSERT_EQ((*src)->Contiguous().data(), nullptr);

  // The pread-backed build must be byte-identical to the same chunked
  // build over in-memory bytes, and its digest must satisfy Matches.
  MemorySource mem_src(doc);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 1;
  opts.chunk_bytes = 1 << 10;
  auto mem = BoundaryIndex::Build(pf.tables(), mem_src, nullptr, opts);
  ASSERT_TRUE(mem.ok());
  auto chunked = BoundaryIndex::Build(pf.tables(), **src, nullptr, opts);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
  EXPECT_EQ(chunked->Serialize(), mem->Serialize());
  ASSERT_TRUE(chunked->Matches(doc, pf.tables()).ok());
  std::remove(path.c_str());
}

TEST(BoundaryIndexTest, ChunkedBuildFailsOnDocumentsThatDoNotPrefilter) {
  core::Prefilter pf = CompileMedline();
  std::string doc = MedlineDoc(4 << 10);
  doc.resize(doc.size() / 2);
  MemorySource src(doc);
  BoundaryIndexOptions opts;
  opts.granularity_bytes = 256;
  opts.chunk_bytes = 512;
  EXPECT_FALSE(BoundaryIndex::Build(pf.tables(), src, nullptr, opts).ok());
}

}  // namespace
}  // namespace smpx::index
