// Golden-corpus regression tests: tiny XMark/MEDLINE/protein documents,
// their DTDs, and their expected projections are CHECKED IN under
// tests/data/ and compared byte-for-byte. Unlike the generator-driven
// suites, nothing here is recomputed from src/xmlgen at test time, so an
// engine regression is caught even if the generators (or their seeds)
// drift in the same commit. The corpus also exercises the boundary index
// against frozen inputs: every projection suffix served by a cursor must
// match a substring of the checked-in projection.
//
// Regenerating the corpus (only when the projection SEMANTICS change
// intentionally): rebuild the three documents with xmlgen seed 42 at
// target_bytes 4096, re-run the serial engine, and replace the files --
// then justify the diff in review like any other golden-file change.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "query/multiquery.h"

namespace smpx {
namespace {

#ifndef SMPX_TEST_DATA_DIR
#define SMPX_TEST_DATA_DIR "tests/data"
#endif

struct GoldenCase {
  const char* name;
  const char* paths;
};

const GoldenCase kCases[] = {
    {"xmark", "/site/people/person@ /site/people/person/name#"},
    {"medline",
     "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
     "/MedlineCitationSet/MedlineCitation/DateCompleted#"},
    {"protein",
     "/ProteinDatabase/ProteinEntry/protein/name# "
     "/ProteinDatabase/ProteinEntry/header@"},
};

std::string DataFile(const std::string& name) {
  auto content = ReadFileToString(std::string(SMPX_TEST_DATA_DIR) + "/" +
                                  name);
  EXPECT_TRUE(content.ok()) << "missing corpus file " << name << ": "
                            << content.status().ToString();
  return content.ok() ? *content : std::string();
}

core::Prefilter CompileGolden(const GoldenCase& c) {
  auto dtd = dtd::Dtd::Parse(DataFile(std::string(c.name) + ".dtd"));
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto paths = paths::ProjectionPath::ParseList(c.paths);
  EXPECT_TRUE(paths.ok());
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*paths));
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

TEST(GoldenCorpusTest, SerialProjectionsMatchCheckedInFiles) {
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::Prefilter pf = CompileGolden(c);
    std::string doc = DataFile(std::string(c.name) + "_tiny.xml");
    std::string expected = DataFile(std::string(c.name) + "_tiny.proj.xml");
    ASSERT_FALSE(doc.empty());
    auto out = pf.RunOnBuffer(doc);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, expected)
        << "projection of the frozen " << c.name
        << " document changed -- engine regression, or an intentional "
           "semantics change that must regenerate tests/data/";
  }
}

TEST(GoldenCorpusTest, ShardedRunsMatchCheckedInFiles) {
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::Prefilter pf = CompileGolden(c);
    std::string doc = DataFile(std::string(c.name) + "_tiny.xml");
    std::string expected = DataFile(std::string(c.name) + "_tiny.proj.xml");
    for (int threads : {2, 4}) {
      parallel::ThreadPool pool(threads);
      StringSink sink;
      Status s = parallel::ShardedRun(pf.tables(), doc, &sink, nullptr,
                                      &pool);
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(sink.str(), expected) << "threads=" << threads;
    }
  }
}

TEST(GoldenCorpusTest, IndexedCursorsServeCheckedInSuffixes) {
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::Prefilter pf = CompileGolden(c);
    std::string doc = DataFile(std::string(c.name) + "_tiny.xml");
    std::string expected = DataFile(std::string(c.name) + "_tiny.proj.xml");
    parallel::ThreadPool pool(2);
    index::BoundaryIndexOptions opts;
    opts.granularity_bytes = 1;
    auto idx = index::BoundaryIndex::Build(pf.tables(), doc, &pool, opts);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    for (const index::IndexEntry& e : idx->entries()) {
      auto cur = index::Cursor::OpenAt(*idx, pf.tables(), doc, e.offset);
      ASSERT_TRUE(cur.ok()) << cur.status().ToString();
      ASSERT_LE(e.out_offset, expected.size());
      StringSink sink;
      ASSERT_TRUE(cur->Drain(&sink).ok());
      EXPECT_EQ(sink.str(),
                expected.substr(static_cast<size_t>(e.out_offset)))
          << "cursor at frozen boundary " << e.offset << " diverged";
    }
  }
}

// The multi-query corpus: tests/data/xmark_mix.queries holds a frozen
// 4-query mix (one exact duplicate), and xmark_tiny.mqN.proj.xml holds
// query N's expected projection as produced by an INDEPENDENT single-query
// serial run -- so this test pins the product engine's differential
// contract against frozen bytes, not against the current engine.
// Regenerate with `smpx --dtd xmark.dtd --paths "<line N>" --out
// xmark_tiny.mqN.proj.xml xmark_tiny.xml` per non-comment line.
TEST(GoldenCorpusTest, MultiQueryMixMatchesCheckedInProjections) {
  std::string mix = DataFile("xmark_mix.queries");
  ASSERT_FALSE(mix.empty());
  std::vector<std::vector<paths::ProjectionPath>> queries;
  for (size_t pos = 0; pos < mix.size();) {
    size_t eol = mix.find('\n', pos);
    if (eol == std::string::npos) eol = mix.size();
    std::string line = mix.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    auto paths = paths::ProjectionPath::ParseList(line);
    ASSERT_TRUE(paths.ok()) << line;
    queries.push_back(std::move(*paths));
  }
  ASSERT_EQ(queries.size(), 4u);

  std::vector<std::string> expected;
  for (size_t q = 0; q < queries.size(); ++q) {
    expected.push_back(
        DataFile("xmark_tiny.mq" + std::to_string(q + 1) + ".proj.xml"));
  }

  auto dtd = dtd::Dtd::Parse(DataFile("xmark.dtd"));
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto mq = query::MultiQuery::Compile(std::move(*dtd), queries);
  ASSERT_TRUE(mq.ok()) << mq.status().ToString();
  EXPECT_EQ(mq->num_queries(), 4);
  EXPECT_EQ(mq->num_unique(), 3);  // the duplicate collapses

  std::string doc = DataFile("xmark_tiny.xml");
  ASSERT_FALSE(doc.empty());

  {
    std::vector<StringSink> sinks(queries.size());
    std::vector<OutputSink*> ptrs;
    for (StringSink& s : sinks) ptrs.push_back(&s);
    std::vector<core::QueryRunStats> qstats;
    Status s = mq->RunOnBuffer(doc, ptrs, &qstats, nullptr);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(sinks[q].str(), expected[q])
          << "one-pass projection of frozen query " << (q + 1)
          << " diverged from its independent single-query golden";
    }
  }

  for (int threads : {2, 4}) {
    parallel::ThreadPool pool(threads);
    std::vector<StringSink> sinks(queries.size());
    std::vector<OutputSink*> ptrs;
    for (StringSink& s : sinks) ptrs.push_back(&s);
    std::vector<std::unique_ptr<FanoutSink>> owned;
    std::vector<OutputSink*> unique_sinks;
    mq->RouteSinks(ptrs, &owned, &unique_sinks);
    Status s = parallel::MultiQueryShardedRun(*mq->shared_tables(), doc,
                                              unique_sinks, nullptr, nullptr,
                                              &pool);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(sinks[q].str(), expected[q])
          << "sharded (threads=" << threads << ") projection of frozen query "
          << (q + 1) << " diverged";
    }
  }
}

}  // namespace
}  // namespace smpx
