// Golden-corpus regression tests: tiny XMark/MEDLINE/protein documents,
// their DTDs, and their expected projections are CHECKED IN under
// tests/data/ and compared byte-for-byte. Unlike the generator-driven
// suites, nothing here is recomputed from src/xmlgen at test time, so an
// engine regression is caught even if the generators (or their seeds)
// drift in the same commit. The corpus also exercises the boundary index
// against frozen inputs: every projection suffix served by a cursor must
// match a substring of the checked-in projection.
//
// Regenerating the corpus (only when the projection SEMANTICS change
// intentionally): rebuild the three documents with xmlgen seed 42 at
// target_bytes 4096, re-run the serial engine, and replace the files --
// then justify the diff in review like any other golden-file change.

#include <string>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"

namespace smpx {
namespace {

#ifndef SMPX_TEST_DATA_DIR
#define SMPX_TEST_DATA_DIR "tests/data"
#endif

struct GoldenCase {
  const char* name;
  const char* paths;
};

const GoldenCase kCases[] = {
    {"xmark", "/site/people/person@ /site/people/person/name#"},
    {"medline",
     "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
     "/MedlineCitationSet/MedlineCitation/DateCompleted#"},
    {"protein",
     "/ProteinDatabase/ProteinEntry/protein/name# "
     "/ProteinDatabase/ProteinEntry/header@"},
};

std::string DataFile(const std::string& name) {
  auto content = ReadFileToString(std::string(SMPX_TEST_DATA_DIR) + "/" +
                                  name);
  EXPECT_TRUE(content.ok()) << "missing corpus file " << name << ": "
                            << content.status().ToString();
  return content.ok() ? *content : std::string();
}

core::Prefilter CompileGolden(const GoldenCase& c) {
  auto dtd = dtd::Dtd::Parse(DataFile(std::string(c.name) + ".dtd"));
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  auto paths = paths::ProjectionPath::ParseList(c.paths);
  EXPECT_TRUE(paths.ok());
  auto pf = core::Prefilter::Compile(std::move(*dtd), std::move(*paths));
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

TEST(GoldenCorpusTest, SerialProjectionsMatchCheckedInFiles) {
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::Prefilter pf = CompileGolden(c);
    std::string doc = DataFile(std::string(c.name) + "_tiny.xml");
    std::string expected = DataFile(std::string(c.name) + "_tiny.proj.xml");
    ASSERT_FALSE(doc.empty());
    auto out = pf.RunOnBuffer(doc);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, expected)
        << "projection of the frozen " << c.name
        << " document changed -- engine regression, or an intentional "
           "semantics change that must regenerate tests/data/";
  }
}

TEST(GoldenCorpusTest, ShardedRunsMatchCheckedInFiles) {
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::Prefilter pf = CompileGolden(c);
    std::string doc = DataFile(std::string(c.name) + "_tiny.xml");
    std::string expected = DataFile(std::string(c.name) + "_tiny.proj.xml");
    for (int threads : {2, 4}) {
      parallel::ThreadPool pool(threads);
      StringSink sink;
      Status s = parallel::ShardedRun(pf.tables(), doc, &sink, nullptr,
                                      &pool);
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(sink.str(), expected) << "threads=" << threads;
    }
  }
}

TEST(GoldenCorpusTest, IndexedCursorsServeCheckedInSuffixes) {
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.name);
    core::Prefilter pf = CompileGolden(c);
    std::string doc = DataFile(std::string(c.name) + "_tiny.xml");
    std::string expected = DataFile(std::string(c.name) + "_tiny.proj.xml");
    parallel::ThreadPool pool(2);
    index::BoundaryIndexOptions opts;
    opts.granularity_bytes = 1;
    auto idx = index::BoundaryIndex::Build(pf.tables(), doc, &pool, opts);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    for (const index::IndexEntry& e : idx->entries()) {
      auto cur = index::Cursor::OpenAt(*idx, pf.tables(), doc, e.offset);
      ASSERT_TRUE(cur.ok()) << cur.status().ToString();
      ASSERT_LE(e.out_offset, expected.size());
      StringSink sink;
      ASSERT_TRUE(cur->Drain(&sink).ok());
      EXPECT_EQ(sink.str(),
                expected.substr(static_cast<size_t>(e.out_offset)))
          << "cursor at frozen boundary " << e.offset << " diverged";
    }
  }
}

}  // namespace
}  // namespace smpx
