// End-to-end tests for the smpx command-line tool's batch mode: per-input
// output naming (in.xml -> in.proj.xml), document-order per-input stats,
// per-document error isolation with a nonzero exit code, and the --out
// concatenation mode's argument-order merge. The binary path is injected
// by CMake as SMPX_CLI_PATH; expected outputs come from the library's
// serial engine over the same inputs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/thread_pool.h"

namespace smpx {
namespace {

constexpr char kDtdText[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
constexpr char kPaths[] = "/a/b#";

TEST(ProjectedOutputPathTest, NamesFollowTheInputPath) {
  EXPECT_EQ(ProjectedOutputPath("in.xml"), "in.proj.xml");
  EXPECT_EQ(ProjectedOutputPath("dir/sub/in.xml"), "dir/sub/in.proj.xml");
  EXPECT_EQ(ProjectedOutputPath("data.bin"), "data.bin.proj.xml");
  EXPECT_EQ(ProjectedOutputPath(".xml"), ".xml.proj.xml");
}

#ifndef SMPX_CLI_PATH
TEST(CliBatchTest, DISABLED_BinaryUnavailable) {}
#else

struct CliResult {
  int exit_code = -1;
  std::string err;
};

/// Runs the CLI with `args`, capturing stderr. `shell_prefix` is prepended
/// inside the shell command (e.g. "ulimit -n 32; " for the fd-limit test).
CliResult RunCli(const std::string& args,
                 const std::string& shell_prefix = std::string()) {
  std::string err_file = ::testing::TempDir() + "/smpx_cli_stderr.txt";
  std::string cmd = shell_prefix + "\"" + SMPX_CLI_PATH + "\" " + args +
                    " 2>\"" + err_file + "\"";
  int rc = std::system(cmd.c_str());
  CliResult r;
  r.exit_code = rc == -1 ? -1 : WEXITSTATUS(rc);
  auto err = ReadFileToString(err_file);
  r.err = err.ok() ? *err : std::string();
  std::remove(err_file.c_str());
  return r;
}

std::string SerialExpected(const std::string& doc) {
  auto dtd = dtd::Dtd::Parse(kDtdText);
  EXPECT_TRUE(dtd.ok());
  if (!dtd.ok()) return std::string();
  auto paths = paths::ProjectionPath::ParseList(kPaths);
  EXPECT_TRUE(paths.ok());
  if (!paths.ok()) return std::string();
  auto pf = core::Prefilter::Compile(std::move(*dtd), *paths);
  EXPECT_TRUE(pf.ok());
  if (!pf.ok()) return std::string();
  auto out = pf->RunOnBuffer(doc);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::string();
}

struct Fixture {
  std::string dtd_path;
  std::vector<std::string> inputs;
  std::vector<std::string> docs;

  explicit Fixture(const std::vector<std::string>& contents) {
    const std::string dir = ::testing::TempDir();
    dtd_path = dir + "/smpx_cli_test.dtd";
    EXPECT_TRUE(WriteStringToFile(dtd_path, kDtdText).ok());
    for (size_t i = 0; i < contents.size(); ++i) {
      std::string path =
          dir + "/smpx_cli_in" + std::to_string(i) + ".xml";
      EXPECT_TRUE(WriteStringToFile(path, contents[i]).ok());
      inputs.push_back(path);
      docs.push_back(contents[i]);
    }
  }
  ~Fixture() {
    std::remove(dtd_path.c_str());
    for (const std::string& p : inputs) {
      std::remove(p.c_str());
      std::remove(ProjectedOutputPath(p).c_str());
    }
  }
  std::string InputArgs() const {
    std::string args;
    for (const std::string& p : inputs) args += " \"" + p + "\"";
    return args;
  }
};

TEST(CliBatchTest, PerInputOutputFilesWithDocumentOrderStats) {
  Fixture fx({"<a><b>first</b><c>x</c></a>",
              "<a><c>y</c><b>second</b><b>again</b></a>",
              "<a><b>third</b></a>"});
  CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                       "\" --batch --stats --threads 3" + fx.InputArgs());
  ASSERT_EQ(r.exit_code, 0) << r.err;
  size_t prev_pos = 0;
  for (size_t i = 0; i < fx.inputs.size(); ++i) {
    std::string out_path = ProjectedOutputPath(fx.inputs[i]);
    auto content = ReadFileToString(out_path);
    ASSERT_TRUE(content.ok()) << out_path;
    EXPECT_EQ(*content, SerialExpected(fx.docs[i])) << out_path;
    // The per-input stats lines must appear in document (argument) order.
    std::string marker = fx.inputs[i] + " -> " + out_path + ":";
    size_t pos = r.err.find(marker);
    ASSERT_NE(pos, std::string::npos) << r.err;
    EXPECT_GE(pos, prev_pos) << "stats lines out of document order:\n"
                             << r.err;
    prev_pos = pos;
  }
}

TEST(CliBatchTest, SingleInputBatchStillWritesPerInputFile) {
  // Regression: batch mode with one input used to fall through to the
  // single-document path (stdout instead of in.proj.xml).
  Fixture fx({"<a><b>solo</b><c>no</c></a>"});
  CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                       "\" --batch" + fx.InputArgs());
  ASSERT_EQ(r.exit_code, 0) << r.err;
  auto content = ReadFileToString(ProjectedOutputPath(fx.inputs[0]));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, SerialExpected(fx.docs[0]));
}

TEST(CliBatchTest, PerDocumentErrorsAreIsolated) {
  Fixture fx({"<a><b>good one</b></a>",
              "<a><b>truncated",  // invalid: never closed
              "<a><b>good two</b></a>"});
  CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                       "\" --batch --threads 2" + fx.InputArgs());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find(fx.inputs[1]), std::string::npos) << r.err;
  for (size_t i : {size_t{0}, size_t{2}}) {
    auto content = ReadFileToString(ProjectedOutputPath(fx.inputs[i]));
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(*content, SerialExpected(fx.docs[i]));
  }
}

TEST(CliBatchTest, DuplicateInputsAreRejected) {
  // Two identical input paths would race on one output file; the CLI must
  // refuse instead of silently corrupting it.
  Fixture fx({"<a><b>dup</b></a>"});
  CliResult r =
      RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
             "\" --batch \"" + fx.inputs[0] + "\" \"" + fx.inputs[0] + "\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("duplicate"), std::string::npos) << r.err;
}

TEST(CliBatchTest, MaxBufferBudgetKeepsOutputsByteIdentical) {
  // A 1-byte budget forces every shard segment and batch document through
  // the spill + ordered-commit path; outputs must not change. Also covers
  // the suffixed size spelling and stdout through the buffered sink.
  std::string big = "<a>";
  for (int i = 0; i < 200; ++i) {
    big += "<b>payload " + std::to_string(i) + "</b><c>drop</c>";
  }
  big += "</a>";
  Fixture fx({big, "<a><b>two</b></a>"});
  std::string expected0 = SerialExpected(fx.docs[0]);

  // Sharded single document, tiny budget, explicit output file.
  std::string out = ::testing::TempDir() + "/smpx_cli_budget.xml";
  CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                       "\" --threads 4 --max-buffer 1 \"" + fx.inputs[0] +
                       "\" \"" + out + "\"");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  auto content = ReadFileToString(out);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, expected0);
  std::remove(out.c_str());

  // Batch --out through the streaming merged driver with a suffixed size.
  std::string merged = ::testing::TempDir() + "/smpx_cli_budget_merged.xml";
  r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
             "\" --batch --threads 2 --max-buffer 1KiB --chunk 64 --out \"" +
             merged + "\"" + fx.InputArgs());
  ASSERT_EQ(r.exit_code, 0) << r.err;
  content = ReadFileToString(merged);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, expected0 + SerialExpected(fx.docs[1]));
  std::remove(merged.c_str());

  // Malformed sizes are usage errors, not silent zeros.
  r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
             "\" --max-buffer nonsense \"" + fx.inputs[1] + "\"");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("byte size"), std::string::npos) << r.err;
}

TEST(CliBatchTest, OutFlagConcatenatesInArgumentOrder) {
  Fixture fx({"<a><b>one</b></a>", "<a><b>two</b><c>z</c></a>",
              "<a><c>q</c><b>three</b></a>"});
  std::string merged = ::testing::TempDir() + "/smpx_cli_merged.xml";
  CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                       "\" --batch --threads 2 --out \"" + merged + "\"" +
                       fx.InputArgs());
  ASSERT_EQ(r.exit_code, 0) << r.err;
  auto content = ReadFileToString(merged);
  ASSERT_TRUE(content.ok());
  std::string expected;
  for (const std::string& d : fx.docs) expected += SerialExpected(d);
  EXPECT_EQ(*content, expected);
  std::remove(merged.c_str());
}

TEST(CliBatchTest, LowFdLimitBatchStillWritesEveryOutputFile) {
  // 60 documents under a 32-fd limit: the per-input batch driver must not
  // hold every output file open at once (the pre-ordered-commit driver
  // did exactly that and died here), and budgeted segments must not cost
  // one spill tmpfile fd each (the pre-SpillArena driver did: every
  // overflowing or parked segment opened its own tmpfile). With the batch
  // sharing a single spill-arena file, both the in-memory and the
  // spill-everything extremes fit the same tight fd budget.
  std::vector<std::string> contents;
  for (int i = 0; i < 60; ++i) {
    contents.push_back("<a><b>doc " + std::to_string(i) +
                       "</b><c>drop</c></a>");
  }
  Fixture fx(contents);
  // --max-buffer 0: segments stay in memory; only output files cost fds.
  // --max-buffer 1: every segment overflows into the shared arena, and
  // out-of-order completions park there too -- still one spill fd total.
  for (const char* budget : {"0", "1"}) {
    SCOPED_TRACE(budget);
    CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                             "\" --batch --threads 4 --max-buffer " + budget +
                             fx.InputArgs(),
                         "ulimit -n 32; ");
    ASSERT_EQ(r.exit_code, 0) << r.err;
    for (size_t i = 0; i < fx.inputs.size(); ++i) {
      auto content = ReadFileToString(ProjectedOutputPath(fx.inputs[i]));
      ASSERT_TRUE(content.ok()) << fx.inputs[i];
      EXPECT_EQ(*content, SerialExpected(fx.docs[i])) << fx.inputs[i];
    }
  }
}

TEST(CliIndexTest, IndexBuildThenSeekServesByteIdenticalSlices) {
  // A document large enough for several granularity-64 boundaries.
  std::string big = "<a>";
  for (int i = 0; i < 120; ++i) {
    big += "<b>keep " + std::to_string(i) + "</b><c>drop " +
           std::to_string(i) + "</c>";
  }
  big += "</a>";
  Fixture fx({big});
  std::string idx_path = ::testing::TempDir() + "/smpx_cli_test.idx";
  CliResult r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
                       "\" --index-build \"" + idx_path +
                       "\" --index-granularity 64 --threads 2 \"" +
                       fx.inputs[0] + "\"");
  ASSERT_EQ(r.exit_code, 0) << r.err;

  // The saved index must load and agree with a library-built one; the
  // library index then provides the expected projection offsets.
  auto loaded = index::BoundaryIndex::LoadFromFile(idx_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_FALSE(loaded->entries().empty());
  std::string serial = SerialExpected(big);

  for (size_t i : {size_t{0}, loaded->entries().size() / 2,
                   loaded->entries().size() - 1}) {
    const index::IndexEntry& e = loaded->entries()[i];
    std::string out = ::testing::TempDir() + "/smpx_cli_seek.xml";
    r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
               "\" --index \"" + idx_path + "\" --seek " +
               std::to_string(e.offset) + " \"" + fx.inputs[0] + "\" \"" +
               out + "\"");
    ASSERT_EQ(r.exit_code, 0) << r.err;
    auto content = ReadFileToString(out);
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(*content, serial.substr(static_cast<size_t>(e.out_offset)))
        << "CLI seek to boundary " << e.offset
        << " is not the serial projection's suffix";
    std::remove(out.c_str());
  }

  // --count limits the emission to whole records.
  {
    const index::IndexEntry& e = loaded->entries()[0];
    std::string out = ::testing::TempDir() + "/smpx_cli_count.xml";
    r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
               "\" --index \"" + idx_path + "\" --seek " +
               std::to_string(e.offset) + " --count 2 \"" + fx.inputs[0] +
               "\" \"" + out + "\"");
    ASSERT_EQ(r.exit_code, 0) << r.err;
    auto content = ReadFileToString(out);
    ASSERT_TRUE(content.ok());
    uint64_t end = loaded->entries().size() > 2
                       ? loaded->entries()[2].out_offset
                       : serial.size();
    EXPECT_EQ(*content,
              serial.substr(static_cast<size_t>(e.out_offset),
                            static_cast<size_t>(end - e.out_offset)));
    std::remove(out.c_str());
  }

  // A stale index (document changed since indexing) must fail closed.
  {
    std::string tampered = big;
    tampered[tampered.find("keep 7") + 5] = '9';
    ASSERT_TRUE(WriteStringToFile(fx.inputs[0], tampered).ok());
    r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
               "\" --index \"" + idx_path + "\" --seek 100 \"" +
               fx.inputs[0] + "\"");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("stale"), std::string::npos) << r.err;
  }

  // A truncated index file must fail closed, not serve wrong bytes.
  {
    auto bytes = ReadFileToString(idx_path);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(
        WriteStringToFile(idx_path, bytes->substr(0, bytes->size() / 2))
            .ok());
    r = RunCli("--dtd \"" + fx.dtd_path + "\" --paths \"" + kPaths +
               "\" --index \"" + idx_path + "\" --seek 100 \"" +
               fx.inputs[0] + "\"");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.err.find("corrupt"), std::string::npos) << r.err;
  }
  std::remove(idx_path.c_str());
}

#endif  // SMPX_CLI_PATH

}  // namespace
}  // namespace smpx
