// Tests for the static analysis (Fig. 6) and runtime engine (Fig. 4),
// anchored on the paper's running examples:
//  - Examples 2/11 + Fig. 3: runtime automaton for /a/b over (b|c)*,
//  - Example 12: subtree collapse for //c#,
//  - Example 3: initial jump J = 4 for state q3,
//  - Example 1: end-to-end prefiltering of the Fig. 2 document.

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/prefilter.h"
#include "core/selection.h"
#include "core/tables.h"
#include "dtd/dtd.h"
#include "dtd/dtd_automaton.h"
#include "paths/projection_path.h"
#include "paths/relevance.h"
#include "xml/tokenizer.h"

namespace smpx::core {
namespace {

constexpr char kPaperDtd[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";

constexpr char kXmarkExcerpt[] = R"(<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location,name,payment,description,shipping,incategory+)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category CDATA #REQUIRED>
]>)";

// The document of Fig. 2 (single line, no whitespace between tags).
constexpr char kFig2Document[] =
    "<site><regions><africa><item><location>United States</location>"
    "<name>T V</name><payment>Creditcard</payment>"
    "<description>15''LCD-FlatPanel</description>"
    "<shipping>Within country</shipping><incategory category=\"3\"/>"
    "</item></africa><asia/><australia><item ><location>Egypt</location>"
    "<name>PDA</name><payment>Check</payment>"
    "<description>Palm Zire 71</description><shipping/>"
    "<incategory category=\"3\"/></item></australia></regions></site>";

dtd::Dtd D(std::string_view text) {
  auto r = dtd::Dtd::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(*r);
}

std::vector<paths::ProjectionPath> P(std::string_view list) {
  auto r = paths::ProjectionPath::ParseList(list);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

Prefilter Compile(std::string_view dtd_text, std::string_view paths,
                  const CompileOptions& opts = {}) {
  auto pf = Prefilter::Compile(D(dtd_text), P(paths), opts);
  EXPECT_TRUE(pf.ok()) << pf.status().ToString();
  return std::move(*pf);
}

std::string Filter(const Prefilter& pf, std::string_view doc,
                   RunStats* stats = nullptr,
                   const EngineOptions& opts = {}) {
  auto out = pf.RunOnBuffer(doc, stats, opts);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::string();
}

/// NextState that fails the test (instead of handing back -1, which would
/// index out of bounds) when the transition is missing.
int MustNext(const RuntimeTables& t, int from, std::string_view name,
             bool closing) {
  int to = t.NextState(from, name, closing);
  EXPECT_GE(to, 0) << "no transition on " << (closing ? "</" : "<") << name
                   << "> from q" << from;
  return to >= 0 ? to : 0;
}

// --- Selection: Fig. 6 step 1 on the paper's examples ---------------------

TEST(SelectionTest, Example11SelectsStopOverStates) {
  // P = {/*, /a/b#}: S must contain q0, a, b-under-a (relevant) plus
  // c-under-a (stop-over added by step (c)), but not the b's under c.
  dtd::Dtd dtd = D(kPaperDtd);
  auto aut = dtd::DtdAutomaton::Build(dtd);
  ASSERT_TRUE(aut.ok());
  paths::RelevanceAnalyzer analyzer(P("/* /a/b#"), {"a", "b", "c"});
  Selection sel = SelectStates(*aut, analyzer);

  int in_s = 0;
  for (bool b : sel.in_s) in_s += b ? 1 : 0;
  EXPECT_EQ(in_s, 7) << "q0 + dual pairs for a, b-under-a, c-under-a";
  EXPECT_EQ(sel.stopover_states, 2u) << "the c pair is a stop-over";

  // c-under-a is instance 2 (BFS order: a, b, c).
  int c_open = dtd::DtdAutomaton::OpenState(2);
  EXPECT_TRUE(sel.in_s[static_cast<size_t>(c_open)]);
  EXPECT_EQ(sel.action[static_cast<size_t>(c_open)], Action::kNop);
  // b-under-a is instance 1: copy on / copy off.
  int b_open = dtd::DtdAutomaton::OpenState(1);
  EXPECT_EQ(sel.action[static_cast<size_t>(b_open)], Action::kCopyOn);
  EXPECT_EQ(sel.action[static_cast<size_t>(b_open) + 1], Action::kCopyOff);
  // a is instance 0: copy tag on both states.
  int a_open = dtd::DtdAutomaton::OpenState(0);
  EXPECT_EQ(sel.action[static_cast<size_t>(a_open)], Action::kCopyTag);
}

TEST(SelectionTest, Example12CollapsesRelevantSubtree) {
  // P = {/*, //c#}: the b's under c are all relevant (C2), so step (b)
  // prunes them and c becomes a wholesale subtree copy.
  dtd::Dtd dtd = D(kPaperDtd);
  auto aut = dtd::DtdAutomaton::Build(dtd);
  ASSERT_TRUE(aut.ok());
  paths::RelevanceAnalyzer analyzer(P("/* //c#"), {"a", "b", "c"});
  Selection sel = SelectStates(*aut, analyzer);

  EXPECT_EQ(sel.collapsed_pairs, 1u);
  int in_s = 0;
  for (bool b : sel.in_s) in_s += b ? 1 : 0;
  // Paper Example 12: S = {q0, q1, q-hat1, q3, q-hat3} -- but b-under-a is
  // also a C3 shield candidate? No: P+ = {/, /*, //c#, //c}; t=c gives only
  // a descendant-form match, so b-under-a stays out. S has 5 states.
  EXPECT_EQ(in_s, 5);
  int c_open = dtd::DtdAutomaton::OpenState(2);
  EXPECT_EQ(sel.action[static_cast<size_t>(c_open)], Action::kCopyOn);
  // The b-instances under c (instances 3 and 4) left S.
  EXPECT_FALSE(sel.in_s[static_cast<size_t>(dtd::DtdAutomaton::OpenState(3))]);
  EXPECT_FALSE(sel.in_s[static_cast<size_t>(dtd::DtdAutomaton::OpenState(4))]);
}

// --- Tables: Fig. 3 --------------------------------------------------------

class Fig3Tables : public ::testing::Test {
 protected:
  void SetUp() override {
    pf_ = std::make_unique<Prefilter>(Compile(kPaperDtd, "/a/b#"));
  }
  std::unique_ptr<Prefilter> pf_;
};

TEST_F(Fig3Tables, SevenStatesLikeFig3) {
  EXPECT_EQ(pf_->num_states(), 7u) << pf_->tables().DebugString();
}

TEST_F(Fig3Tables, VocabulariesMatchFig3) {
  const RuntimeTables& t = pf_->tables();
  // Initial state: V = {"<a"}.
  const DfaState& q0 = t.states[static_cast<size_t>(t.initial)];
  EXPECT_EQ(q0.keywords, (std::vector<std::string>{"<a"}));
  // After <a>: V = {"</a", "<b", "<c"}.
  int q1 = MustNext(t, t.initial, "a", false);
  const DfaState& s1 = t.states[static_cast<size_t>(q1)];
  EXPECT_EQ(s1.keywords, (std::vector<std::string>{"</a", "<b", "<c"}));
  // After <b>: V = {"</b"}; after <c>: V = {"</c"}.
  EXPECT_EQ(
      t.states[static_cast<size_t>(MustNext(t, q1, "b", false))].keywords,
      (std::vector<std::string>{"</b"}));
  EXPECT_EQ(
      t.states[static_cast<size_t>(MustNext(t, q1, "c", false))].keywords,
      (std::vector<std::string>{"</c"}));
}

TEST_F(Fig3Tables, ActionsMatchFig3) {
  const RuntimeTables& t = pf_->tables();
  const DfaState& q0 = t.states[static_cast<size_t>(t.initial)];
  EXPECT_EQ(q0.action, Action::kNop);
  int q1 = MustNext(t, t.initial, "a", false);
  const DfaState& s1 = t.states[static_cast<size_t>(q1)];
  EXPECT_EQ(s1.action, Action::kCopyTag);
  int q2 = MustNext(t, q1, "b", false);
  EXPECT_EQ(t.states[static_cast<size_t>(q2)].action, Action::kCopyOn);
  int q2h = MustNext(t, q2, "b", true);
  EXPECT_EQ(t.states[static_cast<size_t>(q2h)].action, Action::kCopyOff);
  int q3 = MustNext(t, q1, "c", false);
  EXPECT_EQ(t.states[static_cast<size_t>(q3)].action, Action::kNop);
  int q1h = MustNext(t, q1, "a", true);
  const DfaState& s1h = t.states[static_cast<size_t>(q1h)];
  EXPECT_EQ(s1h.action, Action::kCopyTag);
  EXPECT_TRUE(s1h.is_final);
}

TEST_F(Fig3Tables, JumpOffsetsMatchFig3AndExample3) {
  const RuntimeTables& t = pf_->tables();
  const DfaState& q0 = t.states[static_cast<size_t>(t.initial)];
  EXPECT_EQ(q0.jump, 0u);
  int q1 = MustNext(t, t.initial, "a", false);
  const DfaState& s1 = t.states[static_cast<size_t>(q1)];
  EXPECT_EQ(s1.jump, 0u);
  // Example 3: J[q3] = 4 -- c must contain at least one b, minimally <b/>.
  int q3 = MustNext(t, q1, "c", false);
  EXPECT_EQ(t.states[static_cast<size_t>(q3)].jump, 4u);
  int q2 = MustNext(t, q1, "b", false);
  EXPECT_EQ(t.states[static_cast<size_t>(q2)].jump, 0u);
}

TEST_F(Fig3Tables, CwBmSplitMatchesVocabularySizes) {
  const RuntimeTables& t = pf_->tables();
  // Fig. 3: q1, q-hat2 have 3 keywords (CW); q0, q2, q3 single (BM);
  // q-hat3 has 3 keywords; q-hat1 is final with none.
  EXPECT_EQ(t.num_cw_states + t.num_bm_states, 6u);
  EXPECT_EQ(t.num_cw_states, 3u);
  EXPECT_EQ(t.num_bm_states, 3u);
}

// --- Engine end-to-end -----------------------------------------------------

TEST(EngineTest, PaperExample2Projection) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string out =
      Filter(pf, "<a><b>one</b><c><b>shielded</b></c><b>two</b></a>");
  EXPECT_EQ(out, "<a><b>one</b><b>two</b></a>")
      << "b-children of a are kept with subtrees; b's under c are dropped";
}

TEST(EngineTest, PaperExample1EndToEnd) {
  Prefilter pf = Compile(kXmarkExcerpt, "//australia//description#");
  RunStats stats;
  std::string out = Filter(pf, kFig2Document, &stats);
  EXPECT_EQ(out,
            "<site><australia><description>Palm Zire 71</description>"
            "</australia></site>");
  // "only about 22% of all characters need to be inspected" -- ours may
  // differ slightly, but must stay well below half the input.
  EXPECT_LT(stats.CharCompPct(), 50.0);
  EXPECT_GT(stats.CharCompPct(), 5.0);
  EXPECT_EQ(stats.input_bytes, std::string(kFig2Document).size());
}

TEST(EngineTest, WhitespaceAndAttributesInTags) {
  // "<item >" must match like "<item>"; attributes must not confuse the
  // trailing-bracket scan.
  Prefilter pf = Compile(kXmarkExcerpt, "//item/name#");
  std::string doc =
      "<site><regions><africa><item  ><location>x</location>"
      "<name>N1</name><payment>p</payment><description>d</description>"
      "<shipping>s</shipping><incategory category=\"a&gt;b\"/></item>"
      "</africa><asia/><australia/></regions></site>";
  EXPECT_EQ(Filter(pf, doc),
            "<site><item><name>N1</name></item></site>");
}

TEST(EngineTest, PrefixTagnamesAreDisambiguated) {
  // Medline-style Abstract vs AbstractText (the paper's (¶) special case).
  const char dtd[] =
      "<!DOCTYPE r [ <!ELEMENT r (AbstractText, Abstract)>"
      " <!ELEMENT AbstractText (#PCDATA)> <!ELEMENT Abstract (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/r/Abstract#");
  std::string out =
      Filter(pf, "<r><AbstractText>long text</AbstractText>"
                 "<Abstract>short</Abstract></r>");
  EXPECT_EQ(out, "<r><Abstract>short</Abstract></r>");
}

TEST(EngineTest, BachelorTagsFireBothTransitions) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  EXPECT_EQ(Filter(pf, "<a><b/><c><b/></c></a>"), "<a><b/></a>");
  EXPECT_EQ(Filter(pf, "<a/>"), "<a/>");
}

TEST(EngineTest, AttributesCopiedWhenRequested) {
  Prefilter pf = Compile(kPaperDtd, "/a@ /a/b#");
  std::string out = Filter(pf, "<a><b>x</b></a>");
  EXPECT_EQ(out, "<a><b>x</b></a>");
  // With attributes on the input root. The DTD needs an irrelevant child
  // type (c), otherwise step (b) collapses <a> into a wholesale subtree
  // copy that legitimately keeps the attributes.
  const char dtd[] =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ATTLIST a id CDATA #IMPLIED>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf2 = Compile(dtd, "/a@ /a/b#");
  EXPECT_EQ(Filter(pf2, "<a id=\"7\"><b>x</b><c>z</c></a>"),
            "<a id=\"7\"><b>x</b></a>");
  Prefilter pf3 = Compile(dtd, "/a/b#");
  EXPECT_EQ(Filter(pf3, "<a id=\"7\"><b>x</b><c>z</c></a>"),
            "<a><b>x</b></a>")
      << "without '@' the attribute is dropped";
}

TEST(EngineTest, SkipsPrologAndDoctype) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string doc =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- produced by test -->\n" +
      std::string(kPaperDtd) + "\n<a><b>x</b></a>";
  EXPECT_EQ(Filter(pf, doc), "<a><b>x</b></a>");
}

TEST(EngineTest, SmallWindowStreamsCorrectly) {
  // Force a tiny window; output must be identical to the whole-buffer run.
  Prefilter pf = Compile(kXmarkExcerpt, "//australia//description#");
  EngineOptions opts;
  opts.window_capacity = 64;
  RunStats stats;
  std::string small = Filter(pf, kFig2Document, &stats, opts);
  std::string big = Filter(pf, kFig2Document);
  EXPECT_EQ(small, big);
  EXPECT_LE(stats.window_peak, 1024u) << "window must not balloon";
}

TEST(EngineTest, LargeCopiedRegionStreamsThroughSmallWindow) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  std::string text(100000, 'x');
  std::string doc = "<a><b>" + text + "</b></a>";
  EngineOptions opts;
  opts.window_capacity = 256;
  RunStats stats;
  std::string out = Filter(pf, doc, &stats, opts);
  EXPECT_EQ(out, "<a><b>" + text + "</b></a>");
  EXPECT_LE(stats.window_peak, 4096u)
      << "copy-on regions must flush incrementally, not grow the window";
}

TEST(EngineTest, InvalidDocumentReportsParseError) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  MemoryInputStream in("<a><b>never closed");
  StringSink out;
  Status s = pf.Run(&in, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(EngineTest, StatsAreConsistent) {
  Prefilter pf = Compile(kXmarkExcerpt, "//item/description#");
  RunStats stats;
  std::string out = Filter(pf, kFig2Document, &stats);
  EXPECT_EQ(stats.output_bytes, out.size());
  EXPECT_GT(stats.matches, 0u);
  EXPECT_GT(stats.search.comparisons, 0u);
  EXPECT_GT(stats.states_visited, 2u);
  EXPECT_GT(stats.AvgShift(), 1.0);
}

TEST(EngineTest, InitialJumpsCanBeDisabled) {
  CompileOptions opts;
  opts.tables.enable_initial_jumps = false;
  Prefilter without = Compile(kXmarkExcerpt, "//item/shipping#", opts);
  Prefilter with = Compile(kXmarkExcerpt, "//item/shipping#");
  RunStats s_without, s_with;
  std::string out1 = Filter(without, kFig2Document, &s_without);
  std::string out2 = Filter(with, kFig2Document, &s_with);
  EXPECT_EQ(out1, out2) << "jumps are an optimization, not a semantic change";
  EXPECT_EQ(s_without.initial_jump_chars, 0u);
  EXPECT_GE(s_with.initial_jump_chars, s_without.initial_jump_chars);
}

TEST(EngineTest, SearchCountsIncludeFalseMatchRetries) {
  // Vocabulary keyword "<a" false-matches the undeclared tag <abc; every
  // retry must run (and count) a fresh search, so the per-algorithm search
  // counters can exceed the number of state entries. (Regression: the
  // counters were once incremented outside the retry loop.)
  // The irrelevant sibling type c keeps <r> from collapsing into a
  // wholesale subtree copy, so the engine really dispatches per tag.
  const char dtd[] =
      "<!DOCTYPE r [ <!ELEMENT r (a|c)*> <!ELEMENT a (#PCDATA)>"
      " <!ELEMENT c (#PCDATA)> ]>";
  Prefilter pf = Compile(dtd, "/r/a#");
  RunStats stats;
  std::string out =
      Filter(pf, "<r><abc>x</abc><abc>y</abc><a>k</a></r>", &stats);
  EXPECT_EQ(out, "<r><a>k</a></r>");
  EXPECT_GE(stats.false_matches, 2u);
  EXPECT_GE(stats.bm_searches + stats.cw_searches,
            stats.matches + stats.false_matches)
      << "each accepted or rejected candidate consumes one search";
}

TEST(TagInternerTest, DenseIdsInInsertionOrder) {
  TagInterner interner({"site", "item", "name", "site"});
  EXPECT_EQ(interner.size(), 3);
  EXPECT_EQ(interner.Find("site"), 0);
  EXPECT_EQ(interner.Find("item"), 1);
  EXPECT_EQ(interner.Find("name"), 2);
  EXPECT_EQ(interner.Find("nam"), -1);
  EXPECT_EQ(interner.Find("names"), -1);
  EXPECT_EQ(interner.Find(""), -1);
  EXPECT_EQ(interner.name(1), "item");
}

TEST(TagInternerTest, SurvivesRehashGrowth) {
  std::vector<std::string> names;
  for (int i = 0; i < 500; ++i) names.push_back("tag" + std::to_string(i));
  TagInterner interner(names);
  EXPECT_EQ(interner.size(), 500);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(interner.Find("tag" + std::to_string(i)), i);
  }
  EXPECT_EQ(interner.Find("tag500"), -1);
}

TEST_F(Fig3Tables, InternedDispatchMirrorsMapDispatch) {
  // The default (interned) tables must agree transition-for-transition with
  // a map-dispatch compile of the same inputs -- and must NOT carry the
  // legacy tree maps, which are dead weight on the interned path.
  const RuntimeTables& t = pf_->tables();
  ASSERT_TRUE(t.interned_dispatch);
  EXPECT_GT(t.interner.size(), 0);
  for (const DfaState& s : t.states) {
    EXPECT_TRUE(s.open_next.empty());
    EXPECT_TRUE(s.close_next.empty());
    if (!s.entry_name.empty()) {
      EXPECT_EQ(s.entry_tag_id, t.interner.Find(s.entry_name));
    }
  }

  CompileOptions map_opts;
  map_opts.tables.use_map_dispatch = true;
  Prefilter map_pf = Compile(kPaperDtd, "/a/b#", map_opts);
  const RuntimeTables& m = map_pf.tables();
  ASSERT_EQ(m.states.size(), t.states.size());
  for (size_t q = 0; q < m.states.size(); ++q) {
    int flat_open = 0;
    int flat_close = 0;
    for (int32_t v : t.states[q].open_next_id) flat_open += v >= 0 ? 1 : 0;
    for (int32_t v : t.states[q].close_next_id) {
      flat_close += v >= 0 ? 1 : 0;
    }
    EXPECT_EQ(flat_open, static_cast<int>(m.states[q].open_next.size()));
    EXPECT_EQ(flat_close, static_cast<int>(m.states[q].close_next.size()));
    for (const auto& [name, to] : m.states[q].open_next) {
      EXPECT_EQ(t.NextState(static_cast<int>(q), name, false), to);
    }
    for (const auto& [name, to] : m.states[q].close_next) {
      EXPECT_EQ(t.NextState(static_cast<int>(q), name, true), to);
    }
  }
}

TEST(EngineTest, MapDispatchFlagDisablesInterner) {
  CompileOptions opts;
  opts.tables.use_map_dispatch = true;
  Prefilter pf = Compile(kPaperDtd, "/a/b#", opts);
  EXPECT_FALSE(pf.tables().interned_dispatch);
  EXPECT_TRUE(pf.tables().interner.empty());
  std::string out =
      Filter(pf, "<a><b>one</b><c><b>shielded</b></c><b>two</b></a>");
  EXPECT_EQ(out, "<a><b>one</b><b>two</b></a>");
}

TEST(EngineTest, AlternativeFrontierAlgorithms) {
  for (strmatch::Algorithm algo :
       {strmatch::Algorithm::kAhoCorasick, strmatch::Algorithm::kSetHorspool,
        strmatch::Algorithm::kMemchr, strmatch::Algorithm::kNaive}) {
    CompileOptions opts;
    opts.tables.algorithm = algo;
    Prefilter pf = Compile(kXmarkExcerpt, "//australia//description#", opts);
    EXPECT_EQ(Filter(pf, kFig2Document),
              "<site><australia><description>Palm Zire 71</description>"
              "</australia></site>")
        << strmatch::AlgorithmName(algo);
  }
}

TEST(PrefilterTest, AddsStarPathByDefault) {
  Prefilter pf = Compile(kPaperDtd, "/a/b#");
  bool has_star = false;
  for (const auto& p : pf.paths()) {
    if (p.ToString() == "/*") has_star = true;
  }
  EXPECT_TRUE(has_star);
}

TEST(PrefilterTest, RejectsRecursiveDtd) {
  auto dtd = dtd::Dtd::Parse("<!ELEMENT a (a?)>", "a");
  ASSERT_TRUE(dtd.ok());
  auto pf = Prefilter::Compile(std::move(*dtd), P("/a"));
  ASSERT_FALSE(pf.ok());
  EXPECT_EQ(pf.status().code(), StatusCode::kUnsupported);
}

TEST(PrefilterTest, OutputIsWellFormed) {
  Prefilter pf = Compile(kXmarkExcerpt, "//item/name# //item/payment");
  std::string out = Filter(pf, kFig2Document);
  EXPECT_TRUE(xml::CheckWellFormed(out).ok()) << out;
}

}  // namespace
}  // namespace smpx::core
