// Round-trip properties across the XML stack: serialize(parse(doc)) is a
// fixpoint, random valid documents tokenize losslessly (offsets tile the
// input), and DTD text round-trips through parse/print/parse.

#include <string>

#include <gtest/gtest.h>

#include "dtd/dtd.h"
#include "xml/dom.h"
#include "xml/tokenizer.h"
#include "xmlgen/dtd_sampler.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx {
namespace {

TEST(RoundTripTest, SerializeParseIsAFixpointOnRandomDocuments) {
  xmlgen::Rng rng(2024);
  for (int round = 0; round < 40; ++round) {
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::string doc = xmlgen::RandomDocument(dtd, &rng);
    auto parsed = xml::ParseDocument(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << doc;
    std::string once = parsed->Serialize(parsed->root());
    auto reparsed = xml::ParseDocument(once);
    ASSERT_TRUE(reparsed.ok()) << once;
    EXPECT_EQ(reparsed->Serialize(reparsed->root()), once)
        << "serialize/parse must reach a fixpoint after one iteration";
  }
}

TEST(RoundTripTest, TokenOffsetsTileTheDocument) {
  // Tag and markup tokens must cover the input without gaps or overlaps
  // (text fills the rest) -- the property the raw-copy engine relies on.
  xmlgen::XmarkOptions opts;
  opts.target_bytes = 64 << 10;
  std::string doc = xmlgen::GenerateXmark(opts);
  auto tokens = xml::TokenizeAll(doc);
  ASSERT_TRUE(tokens.ok());
  uint64_t pos = 0;
  for (const xml::Token& t : *tokens) {
    ASSERT_EQ(t.begin, pos) << "gap or overlap before token at " << t.begin;
    ASSERT_GT(t.end, t.begin);
    pos = t.end;
    // Raw slice of a tag token must start with '<' and end with '>'.
    if (t.IsTag()) {
      EXPECT_EQ(doc[static_cast<size_t>(t.begin)], '<');
      EXPECT_EQ(doc[static_cast<size_t>(t.end) - 1], '>');
    }
  }
  EXPECT_EQ(pos, doc.size());
}

TEST(RoundTripTest, DtdParsePrintParse) {
  xmlgen::Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    auto again = dtd::Dtd::Parse(dtd.ToString());
    ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n"
                            << dtd.ToString();
    EXPECT_EQ(again->ToString(), dtd.ToString());
    EXPECT_EQ(again->root(), dtd.root());
    EXPECT_EQ(again->elements().size(), dtd.elements().size());
  }
  // And the shipped dataset DTDs.
  for (const dtd::Dtd& d : {xmlgen::XmarkDtd(), xmlgen::MedlineDtd()}) {
    auto again = dtd::Dtd::Parse(d.ToString());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->ToString(), d.ToString());
  }
}

TEST(RoundTripTest, EntityRoundTripThroughDom) {
  std::string doc = "<a x=\"1 &amp; 2\">3 &lt; 4 &gt; 2 &amp; done</a>";
  auto parsed = xml::ParseDocument(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->node(parsed->root()).attrs[0].value, "1 & 2");
  EXPECT_EQ(parsed->TextContent(parsed->root()), "3 < 4 > 2 & done");
  // Re-serialization escapes again.
  std::string out = parsed->Serialize(parsed->root());
  auto reparsed = xml::ParseDocument(out);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->TextContent(reparsed->root()), "3 < 4 > 2 & done");
}

}  // namespace
}  // namespace smpx
