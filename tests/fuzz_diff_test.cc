// Seeded randomized differential fuzz suite for the parallel subsystem:
// every generated (DTD, document, paths) case is prefiltered by the serial
// engine (ground truth), a chunked push-mode session, ShardedRun at
// 1/2/4/7 threads, the streaming batch driver, the streaming *merged*
// batch driver, and an index-resume mode (BoundaryIndex at random
// granularity, cursors opened at random byte targets plus token
// round-trips, each drained against the serial projection's suffix), at
// randomized window, chunk, shard, and output-buffer budget geometries
// (tiny budgets force the SpillSink overflow and ordered-commit paths on
// nearly every case) -- outputs must be byte-identical and the semantic
// statistics must match. Documents come from the src/xmlgen
// samplers (random nonrecursive DTDs plus XMark/MEDLINE/protein), with an
// adversarial edge-mix pass injecting comments, CDATA sections, processing
// instructions, and stray closing tags that desynchronize the structural
// boundary scanner without changing what the engine projects.
//
// The suite doubles as the property harness for the speculation machinery:
//  - every boundary the sharder reports coincides with a real top-level
//    element start per the src/xml tokenizer (serial and region-parallel
//    scanners agree);
//  - the static candidate-state set (RuntimeTables::boundary_states)
//    contains the true entry state at every top-level boundary of a
//    DTD-valid document;
//  - early-kill speculation is always on: every sharded case resolves
//    incrementally and cancels losing attempts mid-wave (cooperative
//    kCancelled at session safe points), so byte-identity here also
//    proves a killed or stolen attempt never corrupts the committed
//    output or the merged statistics.
//
// SMPX_FUZZ_CASES scales the seeded sweep (default 40 cases per family;
// the ctest registration runs >= 100 cases total).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/engine.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "index/cursor.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "query/multiquery.h"
#include "simd/bitmap_plane.h"
#include "simd/simd.h"
#include "xml/tokenizer.h"
#include "xmlgen/dtd_sampler.h"
#include "xmlgen/medline.h"
#include "xmlgen/protein.h"
#include "xmlgen/xmark.h"

namespace smpx::core {
namespace {

int FamilyCases() {
  const char* env = std::getenv("SMPX_FUZZ_CASES");
  int n = env != nullptr ? std::atoi(env) : 0;
  return n > 0 ? n : 40;
}

EngineOptions RandomEngineOptions(xmlgen::Rng* rng) {
  EngineOptions opts;
  switch (xmlgen::Uniform(rng, 0, 3)) {
    case 0: opts.window_capacity = 128; break;
    case 1: opts.window_capacity = 1024; break;
    case 2: opts.window_capacity = 4096; break;
    default: break;  // paper default, 8 pages
  }
  return opts;
}

/// Ground truth for the boundary property tests: byte offsets of every
/// top-level element start (child of the root), per the full tokenizer.
std::vector<uint64_t> TokenizerTopLevelStarts(std::string_view doc) {
  std::vector<uint64_t> starts;
  xml::Tokenizer tok(doc);
  xml::Token t;
  int64_t depth = 0;
  while (tok.Next(&t)) {
    switch (t.type) {
      case xml::TokenType::kStartTag:
        if (depth == 1) starts.push_back(t.begin);
        ++depth;
        break;
      case xml::TokenType::kEmptyTag:
        if (depth == 1) starts.push_back(t.begin);
        break;
      case xml::TokenType::kEndTag:
        --depth;
        break;
      default:
        break;
    }
  }
  return starts;
}

/// Runs every execution mode over `doc` and asserts byte-identical output
/// and matching semantic stats against the serial engine.
/// RAII: randomly flips the process-wide structural bitmap plane for the
/// current case and restores the prior setting on scope exit. Every mode
/// must be insensitive to the toggle (the plane changes classification
/// throughput, never results).
class RandomPlaneToggle {
 public:
  explicit RandomPlaneToggle(xmlgen::Rng* rng) : saved_(simd::PlaneEnabled()) {
    simd::SetPlaneEnabled(xmlgen::Chance(rng, 0.5));
  }
  ~RandomPlaneToggle() { simd::SetPlaneEnabled(saved_); }

 private:
  bool saved_;
};

/// Compile options with the bitmap plane opted in (it defaults off), so the
/// per-case RandomPlaneToggle actually exercises both classification paths.
CompileOptions PlaneOnOpts() {
  CompileOptions opts;
  opts.tables.use_bitmap_plane = true;
  return opts;
}

void ExpectAllModesIdentical(const Prefilter& pf, const std::string& doc,
                             xmlgen::Rng* rng) {
  RandomPlaneToggle plane_toggle(rng);
  EngineOptions eopts = RandomEngineOptions(rng);
  RunStats serial_stats;
  auto serial = pf.RunOnBuffer(doc, &serial_stats, eopts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n" << doc;

  // Chunked push-mode session at a random granularity.
  {
    size_t chunk = static_cast<size_t>(xmlgen::Uniform(rng, 1, 97));
    StringSink sink;
    RunStats stats;
    PrefilterSession session(pf.tables(), &sink, &stats, eopts);
    for (size_t off = 0; off < doc.size(); off += chunk) {
      ASSERT_TRUE(
          session.Resume(std::string_view(doc).substr(off, chunk)).ok());
    }
    ASSERT_TRUE(session.Finish().ok());
    EXPECT_EQ(sink.str(), *serial) << "chunked diverged, chunk=" << chunk;
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.false_matches, serial_stats.false_matches);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
  }

  // Sharded execution across thread counts and shard geometries. A tiny
  // randomized --max-buffer-style budget forces most cases through the
  // SpillSink overflow + ordered-commit path (budget 0 keeps the legacy
  // unbounded in-memory segments for contrast).
  for (int threads : {1, 2, 4, 7}) {
    parallel::ThreadPool pool(threads);
    parallel::ShardOptions opts;
    opts.max_shards = static_cast<size_t>(
        xmlgen::Uniform(rng, 1, 2 * threads + 1));
    opts.engine = eopts;
    opts.max_buffer_bytes =
        static_cast<size_t>(xmlgen::Uniform(rng, 0, 65));
    parallel::ShardReport report;
    StringSink sink;
    RunStats stats;
    Status s = parallel::ShardedRun(pf.tables(), doc, &sink, &stats, &pool,
                                    opts, &report);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(sink.str(), *serial)
        << "sharded diverged, threads=" << threads
        << " shards=" << report.shards
        << " budget=" << opts.max_buffer_bytes;
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.false_matches, serial_stats.false_matches);
    EXPECT_EQ(stats.output_bytes, serial_stats.output_bytes);
    EXPECT_EQ(stats.input_bytes, serial_stats.input_bytes);
    EXPECT_EQ(stats.states_visited, serial_stats.states_visited);
    EXPECT_EQ(report.accepted + report.reruns, report.speculated);
  }

  // Streaming batch (the document plus a sibling copy) at a random chunk.
  {
    parallel::ThreadPool pool(3);
    parallel::StreamOptions sopts;
    sopts.engine = eopts;
    sopts.chunk_bytes = static_cast<size_t>(xmlgen::Uniform(rng, 1, 4096));
    MemorySource src(doc);
    std::vector<const InputSource*> docs = {&src, &src};
    StringSink s0, s1;
    std::vector<OutputSink*> sinks = {&s0, &s1};
    std::vector<RunStats> stats;
    std::vector<Status> statuses = parallel::BatchRunStreaming(
        pf.tables(), docs, sinks, &stats, &pool, sopts);
    for (size_t i = 0; i < statuses.size(); ++i) {
      ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
      EXPECT_EQ(stats[i].matches, serial_stats.matches);
      EXPECT_EQ(stats[i].output_bytes, serial_stats.output_bytes);
    }
    EXPECT_EQ(s0.str(), *serial)
        << "streaming diverged, chunk=" << sopts.chunk_bytes;
    EXPECT_EQ(s1.str(), *serial);
  }

  // Index-resumed random access: build a boundary index at a random
  // granularity, then enter the document at random byte targets (plus the
  // extremes); the cursor's drained output must be the exact suffix of
  // the serial projection starting at the entry's recorded projection
  // offset, and a token round-trip at the resume point must not change a
  // byte. This is the differential property the skip-index exists for.
  {
    parallel::ThreadPool pool(3);
    index::BoundaryIndexOptions iopts;
    iopts.granularity_bytes = static_cast<uint64_t>(xmlgen::Uniform(
        rng, 1, std::max<int64_t>(2, static_cast<int64_t>(doc.size() / 3))));
    iopts.engine = eopts;
    auto idx = index::BoundaryIndex::Build(pf.tables(), doc, &pool, iopts);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    std::vector<uint64_t> targets = {0, doc.size()};
    for (int t = 0; t < 3; ++t) {
      targets.push_back(static_cast<uint64_t>(
          xmlgen::Uniform(rng, 0, static_cast<int64_t>(doc.size()))));
    }
    for (uint64_t target : targets) {
      auto cur = index::Cursor::OpenAt(*idx, pf.tables(), doc, target);
      ASSERT_TRUE(cur.ok()) << cur.status().ToString();
      ASSERT_LE(cur->output_position(), serial->size());
      const std::string expected =
          serial->substr(static_cast<size_t>(cur->output_position()));
      auto restored = index::Cursor::Restore(*idx, pf.tables(), doc,
                                             cur->SaveToken());
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      StringSink direct, via_token;
      ASSERT_TRUE(cur->Drain(&direct).ok());
      EXPECT_EQ(direct.str(), expected)
          << "index resume at target " << target << " (boundary "
          << cur->position() << ", granularity " << iopts.granularity_bytes
          << ") diverged from the serial suffix";
      ASSERT_TRUE(restored->Drain(&via_token).ok());
      EXPECT_EQ(via_token.str(), expected)
          << "token-restored resume at target " << target << " diverged";
    }
  }

  // Streaming merged batch through spill segments and the ordered-commit
  // frontier, at a tiny budget so docs regularly overflow to disk and
  // out-of-order completions park spilled.
  {
    parallel::ThreadPool pool(3);
    parallel::StreamOptions sopts;
    sopts.engine = eopts;
    sopts.chunk_bytes = static_cast<size_t>(xmlgen::Uniform(rng, 1, 4096));
    sopts.max_buffer_bytes =
        static_cast<size_t>(xmlgen::Uniform(rng, 1, 65));
    MemorySource src(doc);
    std::vector<const InputSource*> docs = {&src, &src, &src};
    StringSink merged;
    RunStats stats;
    Status s = parallel::BatchRunStreamingMerged(pf.tables(), docs, &merged,
                                                 &stats, &pool, sopts);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(merged.str(), *serial + *serial + *serial)
        << "streaming merged diverged, chunk=" << sopts.chunk_bytes
        << " budget=" << sopts.max_buffer_bytes;
    EXPECT_EQ(stats.matches, 3 * serial_stats.matches);
    EXPECT_EQ(stats.output_bytes, 3 * serial_stats.output_bytes);
  }
}

/// Asserts the boundary-scanner properties and, when `dtd_valid`, the
/// candidate-state containment property.
void ExpectBoundaryProperties(const Prefilter& pf, const std::string& doc,
                              bool dtd_valid) {
  std::vector<uint64_t> truth = TokenizerTopLevelStarts(doc);
  parallel::ThreadPool pool(3);
  for (size_t splits : {1u, 3u, 7u}) {
    std::vector<uint64_t> serial_bounds =
        parallel::FindTopLevelBoundaries(doc, splits);
    EXPECT_EQ(parallel::FindTopLevelBoundariesParallel(doc, splits, &pool),
              serial_bounds)
        << "scanners disagree at splits=" << splits;
    for (uint64_t b : serial_bounds) {
      EXPECT_TRUE(std::find(truth.begin(), truth.end(), b) != truth.end())
          << "boundary " << b << " is not a top-level element start";
    }
  }
  if (!dtd_valid) return;

  // Containment: at every true top-level boundary, the state of a serial
  // run over the prefix must be in the static candidate set.
  const std::vector<int>& candidates = pf.tables().boundary_states;
  for (uint64_t b : truth) {
    StringSink sink;
    RunStats stats;
    PrefilterSession session(pf.tables(), &sink, &stats, {});
    ASSERT_TRUE(
        session.Resume(std::string_view(doc).substr(
                           0, static_cast<size_t>(b)))
            .ok());
    ASSERT_FALSE(session.finished());
    int state = session.checkpoint().state;
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), state) !=
                candidates.end())
        << "true entry state " << state << " at boundary " << b
        << " missing from the candidate set";
  }
}

/// Injects well-formed opaque constructs (comments/CDATA/PIs whose fake
/// tags are outside every sampled vocabulary) at random between-token
/// positions; with `stray_closers`, also drops unmatched closing tags into
/// text, which desynchronizes the structural scanner's depth tracking but
/// is invisible to the engine (the names match no keyword).
std::string InjectEdgeMix(const std::string& doc, xmlgen::Rng* rng,
                          bool stray_closers) {
  static const char* kSnippets[] = {
      "<!-- <zz9 a=\"1\">commented</zz9> -->",
      "<![CDATA[ <zz8/> raw <zzq]]>",
      "<?zz7 fake='<b>' ?>",
      "<!--->-->",
  };
  static const char* kStray[] = {"</zz6>", "</zz5></zz5>", "<zz4>"};
  std::string out;
  out.reserve(doc.size() + 256);
  for (size_t i = 0; i < doc.size(); ++i) {
    out.push_back(doc[i]);
    // A '>' followed by '<' separates two constructs: a safe splice point.
    if (doc[i] == '>' && i + 1 < doc.size() && doc[i + 1] == '<') {
      if (xmlgen::Chance(rng, 0.08)) {
        out += kSnippets[static_cast<size_t>(
            xmlgen::Uniform(rng, 0, 3))];
      }
      if (stray_closers && xmlgen::Chance(rng, 0.05)) {
        out += kStray[static_cast<size_t>(xmlgen::Uniform(rng, 0, 2))];
      }
    }
  }
  return out;
}

// --- Family 1: random DTD / document / paths ------------------------------

TEST(FuzzDiffTest, RandomDtdDocumentsAcrossAllModes) {
  const int cases = FamilyCases();
  for (int seed = 0; seed < cases; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0x5eed0000u + static_cast<unsigned>(seed));
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::string doc = xmlgen::RandomDocument(dtd, &rng);
    std::vector<paths::ProjectionPath> paths =
        xmlgen::RandomPaths(dtd, &rng);
    auto pf = Prefilter::Compile(dtd, std::move(paths), PlaneOnOpts());
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    ExpectAllModesIdentical(*pf, doc, &rng);
    ExpectBoundaryProperties(*pf, doc, /*dtd_valid=*/true);
  }
}

// --- Family 2: adversarial edge mixes -------------------------------------

TEST(FuzzDiffTest, EdgeMixedDocumentsStayByteIdentical) {
  const int cases = FamilyCases();
  for (int seed = 0; seed < cases; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0xed6e0000u + static_cast<unsigned>(seed));
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::string doc = xmlgen::RandomDocument(dtd, &rng);
    std::vector<paths::ProjectionPath> paths =
        xmlgen::RandomPaths(dtd, &rng);
    auto pf = Prefilter::Compile(dtd, std::move(paths), PlaneOnOpts());
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    // Comments/CDATA/PIs keep the tag stream DTD-valid, so the
    // containment property must still hold...
    std::string mixed = InjectEdgeMix(doc, &rng, /*stray_closers=*/false);
    ExpectAllModesIdentical(*pf, mixed, &rng);
    ExpectBoundaryProperties(*pf, mixed, /*dtd_valid=*/true);
    // ...while stray closing tags may mis-place boundaries: every mode
    // must still be byte-identical (mis-speculation is repaired), but the
    // scanner/tokenizer agreement no longer applies.
    std::string strayed = InjectEdgeMix(doc, &rng, /*stray_closers=*/true);
    ExpectAllModesIdentical(*pf, strayed, &rng);
  }
}

// --- Family 3: dataset samplers (XMark / MEDLINE / protein) ---------------

TEST(FuzzDiffTest, XmarkSampledDocumentsAcrossAllModes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0xa0c0000u + static_cast<unsigned>(seed));
    xmlgen::XmarkOptions gen;
    gen.target_bytes = 24 << 10;
    gen.seed = seed;
    std::string doc = xmlgen::GenerateXmark(gen);
    auto paths = paths::ProjectionPath::ParseList(
        "/site/people/person@ /site/people/person/name#");
    ASSERT_TRUE(paths.ok());
    auto pf = Prefilter::Compile(xmlgen::XmarkDtd(), std::move(*paths),
                                 PlaneOnOpts());
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    ExpectAllModesIdentical(*pf, doc, &rng);
    ExpectBoundaryProperties(*pf, doc, /*dtd_valid=*/true);
  }
}

TEST(FuzzDiffTest, MedlineSampledDocumentsAcrossAllModes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0x3ed0000u + static_cast<unsigned>(seed));
    xmlgen::MedlineOptions gen;
    gen.target_bytes = 24 << 10;
    gen.seed = seed;
    std::string doc = xmlgen::GenerateMedline(gen);
    auto paths = paths::ProjectionPath::ParseList(
        "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo# "
        "/MedlineCitationSet/MedlineCitation/DateCompleted#");
    ASSERT_TRUE(paths.ok());
    auto pf = Prefilter::Compile(xmlgen::MedlineDtd(), std::move(*paths),
                                 PlaneOnOpts());
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    ExpectAllModesIdentical(*pf, doc, &rng);
    ExpectBoundaryProperties(*pf, doc, /*dtd_valid=*/true);
  }
}

TEST(FuzzDiffTest, ProteinSampledDocumentsAcrossAllModes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0x9207000u + static_cast<unsigned>(seed));
    xmlgen::ProteinOptions gen;
    gen.target_bytes = 24 << 10;
    gen.seed = seed;
    std::string doc = xmlgen::GenerateProtein(gen);
    auto paths = paths::ProjectionPath::ParseList(
        "/ProteinDatabase/ProteinEntry/protein/name# "
        "/ProteinDatabase/ProteinEntry/header@");
    ASSERT_TRUE(paths.ok());
    auto pf = Prefilter::Compile(xmlgen::ProteinDtd(), std::move(*paths),
                                 PlaneOnOpts());
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    ExpectAllModesIdentical(*pf, doc, &rng);
    ExpectBoundaryProperties(*pf, doc, /*dtd_valid=*/true);
  }
}

// --- Family 4: SIMD dispatch tier replay ----------------------------------
// Every generated case is prefiltered once per available dispatch tier
// (simd::SetIsa), with the scalar tier as the oracle: outputs must be
// byte-identical and the full statistics -- matcher comparisons, shifts,
// scan_chars -- must match, and the structural boundary scanner must pick
// identical split points. Tiers change how fast structural bytes are
// classified, never which bytes are classified.

TEST(FuzzDiffTest, EveryDispatchTierReplaysByteIdentical) {
  const simd::Isa saved = simd::ActiveIsa();
  const int cases = FamilyCases();
  for (int seed = 0; seed < cases; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0x15a0000u + static_cast<unsigned>(seed));
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::string doc = InjectEdgeMix(xmlgen::RandomDocument(dtd, &rng), &rng,
                                    /*stray_closers=*/true);
    auto pf = Prefilter::Compile(dtd, xmlgen::RandomPaths(dtd, &rng),
                                 PlaneOnOpts());
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    EngineOptions eopts = RandomEngineOptions(&rng);

    simd::SetIsa(simd::Isa::kScalar);
    RunStats ref_stats;
    auto ref = pf->RunOnBuffer(doc, &ref_stats, eopts);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    std::vector<uint64_t> ref_bounds =
        parallel::FindTopLevelBoundaries(doc, 5);

    for (simd::Isa isa : simd::AvailableIsas()) {
      SCOPED_TRACE(simd::IsaName(isa));
      ASSERT_EQ(simd::SetIsa(isa), isa);
      RunStats stats;
      auto out = pf->RunOnBuffer(doc, &stats, eopts);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      ASSERT_EQ(*out, *ref);
      EXPECT_EQ(stats.matches, ref_stats.matches);
      EXPECT_EQ(stats.false_matches, ref_stats.false_matches);
      EXPECT_EQ(stats.scan_chars, ref_stats.scan_chars);
      EXPECT_EQ(stats.search.comparisons, ref_stats.search.comparisons);
      EXPECT_EQ(stats.search.shifts, ref_stats.search.shifts);
      EXPECT_EQ(stats.search.shift_chars, ref_stats.search.shift_chars);
      EXPECT_EQ(stats.bm_searches, ref_stats.bm_searches);
      EXPECT_EQ(stats.cw_searches, ref_stats.cw_searches);
      EXPECT_EQ(stats.initial_jump_chars, ref_stats.initial_jump_chars);
      EXPECT_EQ(stats.output_bytes, ref_stats.output_bytes);
      EXPECT_EQ(parallel::FindTopLevelBoundaries(doc, 5), ref_bounds);
    }
  }
  simd::SetIsa(saved);
}

// --- Family 5: multi-query product vs independent single-query runs -------
// Random 2-8 query mixes (with occasional exact duplicates) compile into
// one shared product DFA and run serially, sharded at 2 and 4 threads
// with a tiny spill budget, and through the streaming driver; every
// ORIGINAL query's bytes and semantic statistics must equal its own
// independent single-query serial run. This is the differential contract
// the multi-query engine ships under: one pass, N projections, each
// byte-identical to what the query would have produced alone.

TEST(FuzzDiffTest, MultiQueryMixesMatchIndependentRuns) {
  const int cases = FamilyCases();
  for (int seed = 0; seed < cases; ++seed) {
    SCOPED_TRACE(seed);
    xmlgen::Rng rng(0x309b0000u + static_cast<unsigned>(seed));
    dtd::Dtd dtd = xmlgen::RandomDtd(&rng);
    std::string doc = xmlgen::RandomDocument(dtd, &rng);
    const int n = static_cast<int>(xmlgen::Uniform(&rng, 2, 8));
    std::vector<std::vector<paths::ProjectionPath>> queries;
    for (int q = 0; q < n; ++q) {
      if (!queries.empty() && xmlgen::Chance(&rng, 0.2)) {
        // Exact duplicate of an earlier query: must collapse to one
        // component and still fill its own sink and stats.
        queries.push_back(queries[static_cast<size_t>(xmlgen::Uniform(
            &rng, 0, static_cast<int64_t>(queries.size()) - 1))]);
      } else {
        queries.push_back(xmlgen::RandomPaths(dtd, &rng));
      }
    }

    // Ground truth: each original query's own independent serial run.
    std::vector<std::string> expected;
    std::vector<RunStats> expected_stats(static_cast<size_t>(n));
    for (int q = 0; q < n; ++q) {
      auto pf = Prefilter::Compile(dtd, queries[static_cast<size_t>(q)]);
      ASSERT_TRUE(pf.ok()) << pf.status().ToString();
      auto out =
          pf->RunOnBuffer(doc, &expected_stats[static_cast<size_t>(q)]);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      expected.push_back(std::move(*out));
    }

    auto mq = query::MultiQuery::Compile(dtd, queries);
    ASSERT_TRUE(mq.ok()) << mq.status().ToString();
    ASSERT_EQ(mq->num_queries(), n);
    ASSERT_LE(mq->num_unique(), n);

    RandomPlaneToggle plane_toggle(&rng);
    EngineOptions eopts = RandomEngineOptions(&rng);
    auto check = [&](const std::string& mode,
                     const std::vector<StringSink>& sinks,
                     const std::vector<QueryRunStats>& qstats) {
      ASSERT_EQ(qstats.size(), static_cast<size_t>(n)) << mode;
      for (int q = 0; q < n; ++q) {
        const size_t i = static_cast<size_t>(q);
        EXPECT_EQ(sinks[i].str(), expected[i])
            << mode << " diverged for query " << q;
        EXPECT_EQ(qstats[i].matches, expected_stats[i].matches)
            << mode << " match count diverged for query " << q;
        EXPECT_EQ(qstats[i].output_bytes, expected_stats[i].output_bytes)
            << mode << " output bytes diverged for query " << q;
      }
    };

    // One serial product pass over the buffer.
    {
      std::vector<StringSink> sinks(static_cast<size_t>(n));
      std::vector<OutputSink*> ptrs;
      for (StringSink& s : sinks) ptrs.push_back(&s);
      std::vector<QueryRunStats> qstats;
      RunStats stats;
      Status s = mq->RunOnBuffer(doc, ptrs, &qstats, &stats, eopts);
      ASSERT_TRUE(s.ok()) << s.ToString();
      check("serial", sinks, qstats);
    }

    // Sharded product runs; tiny budgets force the per-query spill +
    // ordered-commit machinery on most cases.
    for (int threads : {2, 4}) {
      parallel::ThreadPool pool(threads);
      parallel::ShardOptions sopts;
      sopts.engine = eopts;
      sopts.max_shards = static_cast<size_t>(
          xmlgen::Uniform(&rng, 1, 2 * threads + 1));
      sopts.max_buffer_bytes =
          static_cast<size_t>(xmlgen::Uniform(&rng, 0, 65));
      std::vector<StringSink> sinks(static_cast<size_t>(n));
      std::vector<OutputSink*> ptrs;
      for (StringSink& s : sinks) ptrs.push_back(&s);
      std::vector<std::unique_ptr<FanoutSink>> owned;
      std::vector<OutputSink*> unique_sinks;
      mq->RouteSinks(ptrs, &owned, &unique_sinks);
      std::vector<QueryRunStats> unique_stats;
      RunStats stats;
      Status s =
          parallel::MultiQueryShardedRun(*mq->shared_tables(), doc,
                                         unique_sinks, &unique_stats, &stats,
                                         &pool, sopts);
      ASSERT_TRUE(s.ok()) << s.ToString();
      std::vector<QueryRunStats> qstats;
      mq->ExpandStats(unique_stats, &qstats);
      check("sharded t=" + std::to_string(threads), sinks, qstats);
    }

    // Streaming driver at a random chunk size.
    {
      parallel::StreamOptions sopts;
      sopts.engine = eopts;
      sopts.chunk_bytes = static_cast<size_t>(xmlgen::Uniform(&rng, 1, 4096));
      MemorySource src(doc);
      std::vector<StringSink> sinks(static_cast<size_t>(n));
      std::vector<OutputSink*> ptrs;
      for (StringSink& s : sinks) ptrs.push_back(&s);
      std::vector<std::unique_ptr<FanoutSink>> owned;
      std::vector<OutputSink*> unique_sinks;
      mq->RouteSinks(ptrs, &owned, &unique_sinks);
      std::vector<QueryRunStats> unique_stats;
      RunStats stats;
      Status s = parallel::MultiQueryStreamRun(*mq->shared_tables(), src,
                                               unique_sinks, &unique_stats,
                                               &stats, sopts);
      ASSERT_TRUE(s.ok()) << s.ToString();
      std::vector<QueryRunStats> qstats;
      mq->ExpandStats(unique_stats, &qstats);
      check("streaming", sinks, qstats);
    }
  }
}

}  // namespace
}  // namespace smpx::core
