// Differential suite for the multi-query projection engine (src/query):
// N queries compiled into one shared product DFA must emit, for EVERY
// original query and under EVERY driver (serial one-pass, chunked
// streaming, speculative sharding at 1/2/4/7 threads, streaming batch),
// output byte-identical to that query's independent single-query serial
// run -- the paper's per-query projection semantics are the oracle, the
// product automaton is the implementation under test. Also covered:
// equivalence collapse (duplicates, order-permuted path lists, semantic
// subsumption), the N=1 degenerate case against the single-query engine,
// N=65 mask-word spill (two uint64_t words per state), fused-superset
// projection safety per Definition 2, and the rejection surface (recursive
// DTDs, map dispatch, shared vocabulary, single-query drivers fed product
// tables, boundary indexing over product tables).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/engine.h"
#include "core/prefilter.h"
#include "index/boundary_index.h"
#include "parallel/batch.h"
#include "parallel/shard.h"
#include "parallel/thread_pool.h"
#include "paths/projection_path.h"
#include "query/equivalence.h"
#include "query/multiquery.h"
#include "xmlgen/medline.h"
#include "xmlgen/xmark.h"

namespace smpx::query {
namespace {

constexpr char kPaperDtd[] =
    "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
    " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";

std::vector<paths::ProjectionPath> MustParse(std::string_view text) {
  auto parsed = paths::ProjectionPath::ParseList(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : std::vector<paths::ProjectionPath>{};
}

dtd::Dtd MustDtd(std::string_view text) {
  auto dtd = dtd::Dtd::Parse(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return *dtd;
}

/// Ground truth: each query compiled and run alone by the single-query
/// engine. `ref_stats` (may be null) gets that run's RunStats per query.
std::vector<std::string> IndependentRuns(
    const dtd::Dtd& dtd, const std::vector<std::string>& mix,
    std::string_view doc, std::vector<core::RunStats>* ref_stats = nullptr) {
  std::vector<std::string> expected;
  if (ref_stats != nullptr) ref_stats->clear();
  for (const std::string& text : mix) {
    auto pf = core::Prefilter::Compile(dtd, MustParse(text));
    EXPECT_TRUE(pf.ok()) << text << ": " << pf.status().ToString();
    core::RunStats stats;
    auto out = pf->RunOnBuffer(doc, &stats);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    expected.push_back(out.ok() ? *out : std::string());
    if (ref_stats != nullptr) ref_stats->push_back(stats);
  }
  return expected;
}

MultiQuery CompileMix(const dtd::Dtd& dtd, const std::vector<std::string>& mix,
                      const MultiQueryOptions& opts = {}) {
  std::vector<std::vector<paths::ProjectionPath>> queries;
  for (const std::string& text : mix) queries.push_back(MustParse(text));
  auto mq = MultiQuery::Compile(dtd, std::move(queries), opts);
  EXPECT_TRUE(mq.ok()) << mq.status().ToString();
  return std::move(*mq);
}

/// Runs `mq` under every driver and asserts per-query byte identity with
/// `expected` plus per-query stats parity with `ref_stats`.
void ExpectAllDriversIdentical(const MultiQuery& mq, std::string_view doc,
                               const std::vector<std::string>& expected,
                               const std::vector<core::RunStats>& ref_stats) {
  const int nq = mq.num_queries();
  ASSERT_EQ(static_cast<size_t>(nq), expected.size());

  auto check = [&](const std::vector<StringSink>& sinks,
                   const std::vector<core::QueryRunStats>& qstats,
                   const char* driver) {
    ASSERT_EQ(qstats.size(), expected.size()) << driver;
    for (int j = 0; j < nq; ++j) {
      SCOPED_TRACE(std::string(driver) + " q" + std::to_string(j));
      EXPECT_EQ(sinks[static_cast<size_t>(j)].str(),
                expected[static_cast<size_t>(j)]);
      EXPECT_EQ(qstats[static_cast<size_t>(j)].output_bytes,
                expected[static_cast<size_t>(j)].size());
      EXPECT_EQ(qstats[static_cast<size_t>(j)].matches,
                ref_stats[static_cast<size_t>(j)].matches);
    }
  };

  // Serial one-pass.
  {
    std::vector<StringSink> sinks(static_cast<size_t>(nq));
    std::vector<OutputSink*> ptrs;
    for (auto& s : sinks) ptrs.push_back(&s);
    std::vector<core::QueryRunStats> qstats;
    core::RunStats stats;
    Status s = mq.RunOnBuffer(doc, ptrs, &qstats, &stats);
    ASSERT_TRUE(s.ok()) << s.ToString();
    check(sinks, qstats, "serial");
    EXPECT_EQ(stats.input_bytes, doc.size());
  }

  // Chunked streaming at several granularities.
  for (size_t chunk : {7u, 333u, 1u << 20}) {
    SCOPED_TRACE(chunk);
    std::vector<StringSink> sinks(static_cast<size_t>(nq));
    std::vector<OutputSink*> ptrs;
    for (auto& s : sinks) ptrs.push_back(&s);
    std::vector<core::QueryRunStats> qstats;
    MemoryInputStream in(doc);
    Status s = mq.Run(&in, ptrs, &qstats, nullptr, {}, chunk);
    ASSERT_TRUE(s.ok()) << s.ToString();
    check(sinks, qstats, "chunked");
  }

  // Speculative sharding across thread counts, with a small output budget
  // so per-query segments regularly overflow to spill files.
  for (int threads : {1, 2, 4, 7}) {
    SCOPED_TRACE(threads);
    parallel::ThreadPool pool(threads);
    parallel::ShardOptions popts;
    popts.max_buffer_bytes = 512;
    std::vector<StringSink> sinks(static_cast<size_t>(nq));
    std::vector<OutputSink*> ptrs;
    for (auto& s : sinks) ptrs.push_back(&s);
    std::vector<std::unique_ptr<FanoutSink>> owned;
    std::vector<OutputSink*> unique_sinks;
    mq.RouteSinks(ptrs, &owned, &unique_sinks);
    std::vector<core::QueryRunStats> uq_stats;
    core::RunStats stats;
    Status s = parallel::MultiQueryShardedRun(mq.tables(), doc, unique_sinks,
                                              &uq_stats, &stats, &pool, popts);
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::vector<core::QueryRunStats> qstats;
    mq.ExpandStats(uq_stats, &qstats);
    check(sinks, qstats, "sharded");
    EXPECT_EQ(stats.input_bytes, doc.size());
  }

  // Streaming batch driver (the document twice), bounded chunks.
  {
    parallel::ThreadPool pool(3);
    parallel::StreamOptions sopts;
    sopts.chunk_bytes = 1024;
    MemorySource src(doc);
    std::vector<const InputSource*> docs = {&src, &src};
    std::vector<std::vector<StringSink>> sinks(
        2, std::vector<StringSink>(static_cast<size_t>(nq)));
    std::vector<std::vector<std::unique_ptr<FanoutSink>>> owned(2);
    std::vector<std::vector<OutputSink*>> doc_sinks(2);
    for (size_t d = 0; d < 2; ++d) {
      std::vector<OutputSink*> ptrs;
      for (auto& s : sinks[d]) ptrs.push_back(&s);
      mq.RouteSinks(ptrs, &owned[d], &doc_sinks[d]);
    }
    std::vector<std::vector<core::QueryRunStats>> doc_qstats;
    std::vector<Status> statuses = parallel::MultiQueryBatchRunStreaming(
        mq.tables(), docs, doc_sinks, &doc_qstats, nullptr, &pool, sopts);
    for (size_t d = 0; d < 2; ++d) {
      ASSERT_TRUE(statuses[d].ok()) << statuses[d].ToString();
      std::vector<core::QueryRunStats> qstats;
      mq.ExpandStats(doc_qstats[d], &qstats);
      check(sinks[d], qstats, "batch");
    }
  }
}

// --- Mixed workloads on the paper's datasets ------------------------------

TEST(MultiQueryTest, XmarkMixAllDriversByteIdentical) {
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 96 << 10;
  const std::string doc = xmlgen::GenerateXmark(gen);
  const dtd::Dtd dtd = xmlgen::XmarkDtd();
  // Duplicate (q1/q3), overlapping prefixes (/site/people...), and
  // disjoint subtrees (regions vs auctions) in one mix.
  const std::vector<std::string> mix = {
      "/site/people/person/name#",
      "/site/open_auctions/open_auction/initial",
      "/site/people/person/name#",
      "/site/closed_auctions/closed_auction/price",
      "/site/regions//item/name#",
  };
  std::vector<core::RunStats> ref_stats;
  std::vector<std::string> expected =
      IndependentRuns(dtd, mix, doc, &ref_stats);
  MultiQuery mq = CompileMix(dtd, mix);
  EXPECT_EQ(mq.num_queries(), 5);
  EXPECT_EQ(mq.num_unique(), 4);  // the duplicate collapsed
  EXPECT_EQ(mq.unique_of(0), mq.unique_of(2));
  ExpectAllDriversIdentical(mq, doc, expected, ref_stats);
}

TEST(MultiQueryTest, MedlineMixAllDriversByteIdentical) {
  xmlgen::MedlineOptions gen;
  gen.target_bytes = 96 << 10;
  const std::string doc = xmlgen::GenerateMedline(gen);
  const dtd::Dtd dtd = xmlgen::MedlineDtd();
  const std::vector<std::string> mix = {
      "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo#",
      "/MedlineCitationSet/MedlineCitation/DateCompleted#",
      "/MedlineCitationSet/MedlineCitation/Article/Journal#",
  };
  std::vector<core::RunStats> ref_stats;
  std::vector<std::string> expected =
      IndependentRuns(dtd, mix, doc, &ref_stats);
  MultiQuery mq = CompileMix(dtd, mix);
  EXPECT_EQ(mq.num_unique(), 3);
  ExpectAllDriversIdentical(mq, doc, expected, ref_stats);
}

// --- Equivalence collapse -------------------------------------------------

TEST(MultiQueryTest, OrderPermutedPathListsCollapseSyntactically) {
  const dtd::Dtd dtd = MustDtd(kPaperDtd);
  const std::vector<std::string> mix = {"/a/b /a/c#", "/a/c# /a/b",
                                        "/a/b /a/b /a/c#"};
  MultiQuery mq = CompileMix(dtd, mix);
  // Canonicalization sorts and dedups each path list, so all three are one
  // unique query.
  EXPECT_EQ(mq.num_queries(), 3);
  EXPECT_EQ(mq.num_unique(), 1);

  const std::string doc =
      "<a><b>x</b><c><b>in</b></c><b>y</b><c><b>z</b><b>w</b></c></a>";
  std::vector<core::RunStats> ref_stats;
  std::vector<std::string> expected =
      IndependentRuns(dtd, mix, doc, &ref_stats);
  EXPECT_EQ(expected[0], expected[1]);
  EXPECT_EQ(expected[0], expected[2]);
  ExpectAllDriversIdentical(mq, doc, expected, ref_stats);
}

TEST(MultiQueryTest, SemanticallySubsumedQueriesCollapse) {
  const dtd::Dtd dtd = MustDtd(kPaperDtd);
  // "/a/zzz" matches nothing under this DTD (no zzz element), so the
  // second query projects exactly like plain "/a/b"; likewise "//b" and
  // "/a//b" reach the same b nodes because a is the only possible root.
  // Both pairs also COMPILE to behaviorally identical tables, so the
  // semantic tier may serve each pair from one component.
  {
    const std::vector<std::string> mix = {"/a/b", "/a/b /a/zzz"};
    MultiQuery mq = CompileMix(dtd, mix);
    EXPECT_EQ(mq.num_unique(), 1);

    // With the semantic tier disabled they stay separate (the canonical
    // forms differ) -- and still project identically.
    MultiQueryOptions opts;
    opts.semantic_collapse = false;
    MultiQuery mq2 = CompileMix(dtd, mix, opts);
    EXPECT_EQ(mq2.num_unique(), 2);

    const std::string doc = "<a><b>x</b><c><b>deep</b></c><b>y</b></a>";
    std::vector<core::RunStats> ref_stats;
    std::vector<std::string> expected =
        IndependentRuns(dtd, mix, doc, &ref_stats);
    EXPECT_EQ(expected[0], expected[1]);
    ExpectAllDriversIdentical(mq, doc, expected, ref_stats);
    ExpectAllDriversIdentical(mq2, doc, expected, ref_stats);
  }
  {
    // Descendant-axis flavor: "//zzz//b" needs a zzz ancestor that no
    // tree over this DTD's alphabet can have.
    const std::vector<std::string> mix = {"/a/b", "/a/b //zzz//b"};
    MultiQuery mq = CompileMix(dtd, mix);
    EXPECT_EQ(mq.num_unique(), 1);
  }
}

TEST(MultiQueryTest, AbstractlyEquivalentButDifferentlyCompiledStaySeparate) {
  const dtd::Dtd dtd = MustDtd(kPaperDtd);
  // The flag walk proves "/a//b /a/b" selects the same nodes as "/a//b"
  // (the exact path is subsumed), but the conservative relevance analysis
  // compiles the overlapping pair to a WIDER projection that emits
  // different bytes. Collapsing on abstract equivalence alone would break
  // the per-query byte-identity contract, so the compiler must keep the
  // two queries separate and give each its own single-query bytes.
  const std::vector<std::string> mix = {"/a//b", "/a//b /a/b"};
  MultiQuery mq = CompileMix(dtd, mix);
  EXPECT_EQ(mq.num_unique(), 2);

  const std::string doc = "<a><b>x</b><c><b>deep</b></c><b>y</b></a>";
  std::vector<core::RunStats> ref_stats;
  std::vector<std::string> expected =
      IndependentRuns(dtd, mix, doc, &ref_stats);
  // The engine genuinely emits different bytes for the two queries; that
  // asymmetry is exactly why the collapse must not fire.
  EXPECT_NE(expected[0], expected[1]);
  ExpectAllDriversIdentical(mq, doc, expected, ref_stats);
}

// --- Degenerate and boundary sizes ----------------------------------------

TEST(MultiQueryTest, SingleQueryMatchesSingleQueryEngine) {
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 48 << 10;
  const std::string doc = xmlgen::GenerateXmark(gen);
  const dtd::Dtd dtd = xmlgen::XmarkDtd();
  const std::string text = "/site/people/person/name#";

  auto pf = core::Prefilter::Compile(dtd, MustParse(text));
  ASSERT_TRUE(pf.ok());
  core::RunStats single_stats;
  auto single = pf->RunOnBuffer(doc, &single_stats);
  ASSERT_TRUE(single.ok());

  MultiQuery mq = CompileMix(dtd, {text});
  ASSERT_EQ(mq.num_queries(), 1);
  ASSERT_EQ(mq.num_unique(), 1);
  StringSink sink;
  std::vector<core::QueryRunStats> qstats;
  core::RunStats stats;
  Status s = mq.RunOnBuffer(doc, {&sink}, &qstats, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.str(), *single);
  EXPECT_EQ(stats.matches, single_stats.matches);
  EXPECT_EQ(stats.output_bytes, single_stats.output_bytes);
  EXPECT_EQ(stats.input_bytes, single_stats.input_bytes);
  EXPECT_EQ(qstats[0].matches, single_stats.matches);
  EXPECT_EQ(qstats[0].output_bytes, single_stats.output_bytes);
}

TEST(MultiQueryTest, SixtyFiveQueriesSpillIntoSecondMaskWord) {
  // 70 child kinds, 65 distinct queries: per-state masks need two
  // uint64_t words, and query 64 lives entirely in the second word.
  std::string dtd_text = "<!DOCTYPE root [ <!ELEMENT root (";
  for (int k = 0; k < 70; ++k) {
    if (k > 0) dtd_text += "|";
    dtd_text += "a" + std::to_string(k);
  }
  dtd_text += ")*>";
  for (int k = 0; k < 70; ++k) {
    dtd_text += " <!ELEMENT a" + std::to_string(k) + " (#PCDATA)>";
  }
  dtd_text += " ]>";
  const dtd::Dtd dtd = MustDtd(dtd_text);

  std::string doc = "<root>";
  for (int rep = 0; rep < 3; ++rep) {
    for (int k = 0; k < 70; ++k) {
      const std::string t = "a" + std::to_string(k);
      doc += "<" + t + ">v" + std::to_string(rep) + "</" + t + ">";
    }
  }
  doc += "</root>";

  std::vector<std::string> mix;
  for (int k = 0; k < 65; ++k) {
    mix.push_back("/root/a" + std::to_string(k) + "#");
  }
  MultiQuery mq = CompileMix(dtd, mix);
  ASSERT_EQ(mq.num_unique(), 65);
  ASSERT_NE(mq.tables().multi, nullptr);
  EXPECT_EQ(mq.tables().multi->words, 2);

  std::vector<core::RunStats> ref_stats;
  std::vector<std::string> expected =
      IndependentRuns(dtd, mix, doc, &ref_stats);
  for (int k = 0; k < 65; ++k) {
    EXPECT_NE(expected[static_cast<size_t>(k)].find(
                  "<a" + std::to_string(k) + ">"),
              std::string::npos);
  }
  ExpectAllDriversIdentical(mq, doc, expected, ref_stats);
}

// --- Fused superset -------------------------------------------------------

TEST(MultiQueryTest, FusedSupersetIsProjectionSafeForEveryQuery) {
  xmlgen::XmarkOptions gen;
  gen.target_bytes = 32 << 10;
  const std::string doc = xmlgen::GenerateXmark(gen);
  const dtd::Dtd dtd = xmlgen::XmarkDtd();
  const std::vector<std::string> mix = {
      "/site/people/person/name#",
      "/site/open_auctions/open_auction/initial",
      "/site/regions//item/name#",
  };
  MultiQuery mq = CompileMix(dtd, mix);
  auto fused = mq.CompileFused();
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  auto out = fused->RunOnBuffer(doc);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Definition 2: every query evaluates top-level-equal on the original
  // document and the fused projection.
  for (const std::string& text : mix) {
    SCOPED_TRACE(text);
    auto report = CheckProjectionSafety(doc, *out, MustParse(text));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->safe) << report->first_violation;
  }
}

// --- Rejection surface ----------------------------------------------------

TEST(MultiQueryTest, RejectsUnsupportedModesAndInputs) {
  const dtd::Dtd dtd = MustDtd(kPaperDtd);
  std::vector<std::vector<paths::ProjectionPath>> one = {MustParse("/a/b")};

  {  // Empty mix.
    auto mq = MultiQuery::Compile(dtd, {});
    EXPECT_FALSE(mq.ok());
  }
  {  // Opaque-recursion mode: per-query bitmask actions cannot tunnel.
    MultiQueryOptions opts;
    opts.compile.allow_recursion = true;
    auto mq = MultiQuery::Compile(dtd, one, opts);
    EXPECT_FALSE(mq.ok());
  }
  {  // Legacy map dispatch: the product needs interned transition arrays.
    MultiQueryOptions opts;
    opts.compile.tables.use_map_dispatch = true;
    auto mq = MultiQuery::Compile(dtd, one, opts);
    EXPECT_FALSE(mq.ok());
  }
  {  // Shared-vocabulary ablation: per-state frontiers are load-bearing.
    MultiQueryOptions opts;
    opts.compile.tables.shared_vocabulary = true;
    auto mq = MultiQuery::Compile(dtd, one, opts);
    EXPECT_FALSE(mq.ok());
  }
}

TEST(MultiQueryTest, SingleQueryDriversRejectProductTables) {
  const dtd::Dtd dtd = MustDtd(kPaperDtd);
  MultiQuery mq = CompileMix(dtd, {"/a/b", "/a/c#"});
  const std::string doc = "<a><b>x</b><c><b>y</b></c></a>";

  {  // ShardedRun writes ONE output; product tables have N.
    parallel::ThreadPool pool(2);
    StringSink sink;
    Status s =
        parallel::ShardedRun(mq.tables(), doc, &sink, nullptr, &pool, {});
    EXPECT_FALSE(s.ok());
  }
  {  // Boundary indexing over product tables is unsupported.
    parallel::ThreadPool pool(2);
    auto idx = index::BoundaryIndex::Build(mq.tables(), doc, &pool, {});
    EXPECT_FALSE(idx.ok());
  }
  {  // Wrong sink count fails closed.
    parallel::ThreadPool pool(2);
    StringSink sink;
    std::vector<OutputSink*> sinks = {&sink};
    Status s = parallel::MultiQueryShardedRun(mq.tables(), doc, sinks,
                                              nullptr, nullptr, &pool, {});
    EXPECT_FALSE(s.ok());
  }
  {  // And the multi-query streaming driver rejects single-query tables.
    auto pf = core::Prefilter::Compile(dtd, MustParse("/a/b"));
    ASSERT_TRUE(pf.ok());
    MemorySource src(doc);
    StringSink sink;
    std::vector<OutputSink*> sinks = {&sink};
    Status s = parallel::MultiQueryStreamRun(pf->tables(), src, sinks,
                                             nullptr, nullptr, {});
    EXPECT_FALSE(s.ok());
  }
}

}  // namespace
}  // namespace smpx::query
