// Quickstart: compile a (DTD, projection paths) pair and prefilter a
// document, exactly the paper's Example 1 scenario.
//
//   $ ./quickstart
//
// walks through: parsing a DTD, parsing projection paths, compiling the
// runtime tables (A, V, J, T), prefiltering a document, and reading the
// runtime statistics.

#include <cstdio>

#include "core/prefilter.h"
#include "dtd/dtd.h"
#include "paths/projection_path.h"

int main() {
  // 1. A nonrecursive DTD (the paper's Fig. 1 XMark excerpt).
  const char* dtd_text = R"(<!DOCTYPE site [
    <!ELEMENT site (regions)>
    <!ELEMENT regions (africa, asia, australia)>
    <!ELEMENT africa (item*)>
    <!ELEMENT asia (item*)>
    <!ELEMENT australia (item*)>
    <!ELEMENT item (location,name,payment,description,shipping,incategory+)>
    <!ELEMENT location (#PCDATA)> <!ELEMENT name (#PCDATA)>
    <!ELEMENT payment (#PCDATA)> <!ELEMENT description (#PCDATA)>
    <!ELEMENT shipping (#PCDATA)> <!ELEMENT incategory EMPTY>
    <!ATTLIST incategory category CDATA #REQUIRED>
  ]>)";
  auto dtd = smpx::dtd::Dtd::Parse(dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  // 2. Projection paths for the XQuery <q>{//australia//description}</q>.
  //    The '#' flag keeps whole subtrees; "/*" (the top-level node) is
  //    added automatically.
  auto paths =
      smpx::paths::ProjectionPath::ParseList("//australia//description#");
  if (!paths.ok()) {
    std::fprintf(stderr, "paths: %s\n", paths.status().ToString().c_str());
    return 1;
  }

  // 3. Static analysis (Section IV): one compilation, any number of runs.
  auto prefilter =
      smpx::core::Prefilter::Compile(std::move(*dtd), std::move(*paths));
  if (!prefilter.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 prefilter.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled runtime automaton: %zu states\n%s\n",
              prefilter->num_states(),
              prefilter->tables().DebugString().c_str());

  // 4. Prefilter the paper's Fig. 2 document.
  const char* document =
      "<site><regions><africa><item><location>United States</location>"
      "<name>T V</name><payment>Creditcard</payment>"
      "<description>15''LCD-FlatPanel</description>"
      "<shipping>Within country</shipping><incategory category=\"3\"/>"
      "</item></africa><asia/><australia><item ><location>Egypt</location>"
      "<name>PDA</name><payment>Check</payment>"
      "<description>Palm Zire 71</description><shipping/>"
      "<incategory category=\"3\"/></item></australia></regions></site>";

  smpx::core::RunStats stats;
  auto projected = prefilter->RunOnBuffer(document, &stats);
  if (!projected.ok()) {
    std::fprintf(stderr, "run: %s\n", projected.status().ToString().c_str());
    return 1;
  }

  std::printf("input  (%zu bytes): %s\n", std::string(document).size(),
              document);
  std::printf("output (%zu bytes): %s\n", projected->size(),
              projected->c_str());
  std::printf(
      "\ncharacters inspected: %.1f%%  (paper reports ~22%% for this "
      "example)\naverage forward shift: %.2f chars, initial jumps skipped "
      "%.1f%% of the input\n",
      stats.CharCompPct(), stats.AvgShift(), stats.InitialJumpPct());
  return 0;
}
