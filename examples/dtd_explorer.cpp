// Domain example 4: inspect the static analysis -- print the
// DTD-automaton, the selected state set S, and the compiled lookup tables
// A/V/J/T for a query, as in the paper's Figs. 3, 5 and 6. Useful when
// debugging why the runtime visits (or skips) certain tags.
//
//   $ ./dtd_explorer                      # the paper's running example
//   $ ./dtd_explorer <dtd-file> <paths>   # your own schema

#include <cstdio>
#include <string>

#include "common/io.h"
#include "core/prefilter.h"
#include "dtd/dtd.h"
#include "dtd/dtd_automaton.h"
#include "paths/projection_path.h"

int main(int argc, char** argv) {
  std::string dtd_text =
      "<!DOCTYPE a [ <!ELEMENT a (b|c)*>"
      " <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>";
  std::string path_list = "/a/b#";
  if (argc >= 3) {
    auto file = smpx::ReadFileToString(argv[1]);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
      return 1;
    }
    dtd_text = *file;
    path_list = argv[2];
  }

  auto dtd = smpx::dtd::Dtd::Parse(dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD: %s\n", dtd.status().ToString().c_str());
    return 1;
  }
  std::printf("DTD (root <%s>, %zu elements):\n%s\n\n",
              dtd->root().c_str(), dtd->elements().size(),
              dtd->ToString().c_str());

  auto aut = smpx::dtd::DtdAutomaton::Build(*dtd);
  if (!aut.ok()) {
    std::fprintf(stderr, "automaton: %s\n",
                 aut.status().ToString().c_str());
    return 1;
  }
  std::printf("DTD-automaton (paper Fig. 5): %d states, %zu instances\n",
              aut->num_states(), aut->instances().size());
  std::printf("Graphviz:\n%s\n", aut->ToDot().c_str());

  auto paths = smpx::paths::ProjectionPath::ParseList(path_list);
  if (!paths.ok()) {
    std::fprintf(stderr, "paths: %s\n", paths.status().ToString().c_str());
    return 1;
  }
  auto pf = smpx::core::Prefilter::Compile(std::move(*dtd), *paths);
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  std::printf("Runtime tables A/V/J/T (paper Fig. 3) for %s:\n%s",
              path_list.c_str(), pf->tables().DebugString().c_str());
  return 0;
}
