// Domain example 1: scale an in-memory XQuery engine to inputs it could not
// load, by prefiltering first (the paper's Fig. 7(a) scenario, Section I
// motivation). Generates an XMark auction document, shows the memory-budget
// failure without projection, then the same query succeeding behind SMP.
//
//   $ ./xmark_projection [size_mb]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/prefilter.h"
#include "query/mem_engine.h"
#include "xmlgen/xmark.h"

int main(int argc, char** argv) {
  double mb = argc > 1 ? std::atof(argv[1]) : 16.0;

  smpx::xmlgen::XmarkOptions gen;
  gen.target_bytes = static_cast<uint64_t>(mb * (1 << 20));
  std::printf("generating ~%.0f MB XMark auction document...\n", mb);
  std::string doc = smpx::xmlgen::GenerateXmark(gen);
  std::printf("document: %.2f MB\n", doc.size() / 1048576.0);

  // An in-memory engine with a deliberately tight budget (the paper capped
  // its Java engines at 1 GB; we scale the cliff to the document).
  smpx::query::MemEngineOptions engine;
  engine.memory_budget = gen.target_bytes / 2;
  const char* query = "/site/regions/australia/item/description";

  std::printf("\n[1] query engine alone, budget %.0f MB:\n",
              engine.memory_budget / 1048576.0);
  smpx::WallTimer t1;
  auto direct = smpx::query::EvaluateInMemory(query, doc, engine);
  if (direct.ok()) {
    std::printf("    ok: %zu results in %.3fs (DOM footprint %.1f MB)\n",
                direct->result_count, t1.Seconds(),
                direct->dom_bytes / 1048576.0);
  } else {
    std::printf("    FAILED as expected: %s\n",
                direct.status().ToString().c_str());
  }

  // Prefilter for the query's projection paths, then evaluate.
  auto paths = smpx::paths::ProjectionPath::ParseList(
      "/site/regions/australia/item/description#");
  auto pf = smpx::core::Prefilter::Compile(smpx::xmlgen::XmarkDtd(),
                                           std::move(*paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[2] SMP prefilter + query engine, same budget:\n");
  smpx::WallTimer t2;
  smpx::core::RunStats stats;
  auto projected = pf->RunOnBuffer(doc, &stats);
  if (!projected.ok()) {
    std::fprintf(stderr, "prefilter: %s\n",
                 projected.status().ToString().c_str());
    return 1;
  }
  double prefilter_s = t2.Seconds();
  auto piped = smpx::query::EvaluateInMemory(query, *projected, engine);
  if (!piped.ok()) {
    std::fprintf(stderr, "engine on projection: %s\n",
                 piped.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "    prefiltered %.2f MB -> %.2f MB in %.3fs (inspected %.1f%% of "
      "the input)\n    query on the projection: %zu results, total %.3fs\n",
      doc.size() / 1048576.0, projected->size() / 1048576.0, prefilter_s,
      stats.CharCompPct(), piped->result_count, t2.Seconds());

  if (direct.ok() && direct->result_count != piped->result_count) {
    std::fprintf(stderr, "result mismatch -- projection bug!\n");
    return 1;
  }
  std::printf("\nprojection preserved the query result (%zu items).\n",
              piped->result_count);
  return 0;
}
