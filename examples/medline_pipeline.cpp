// Domain example 2: streaming pipeline (the paper's Fig. 7(b) scenario).
// A MEDLINE-style citation feed is prefiltered by SMP and piped into a
// streaming XPath evaluator; compare against running the evaluator on the
// raw feed. Also demonstrates the M1 effect: filtering for a tag the DTD
// declares but the feed never contains touches almost nothing.
//
//   $ ./medline_pipeline [size_mb]

#include <cstdio>
#include <cstdlib>

#include "common/io.h"
#include "common/timer.h"
#include "core/prefilter.h"
#include "query/stream_engine.h"
#include "xmlgen/medline.h"

int main(int argc, char** argv) {
  double mb = argc > 1 ? std::atof(argv[1]) : 16.0;
  smpx::xmlgen::MedlineOptions gen;
  gen.target_bytes = static_cast<uint64_t>(mb * (1 << 20));
  std::string doc = smpx::xmlgen::GenerateMedline(gen);
  std::printf("citation feed: %.2f MB\n", doc.size() / 1048576.0);

  const char* query =
      "/MedlineCitationSet//DataBank[DataBankName = 'PDB']"
      "/AccessionNumberList";
  const char* projection =
      "/MedlineCitationSet//DataBank/DataBankName# "
      "/MedlineCitationSet//DataBank/AccessionNumberList#";

  // Stand-alone streaming evaluation (tokenizes every byte).
  smpx::WallTimer t1;
  smpx::StringSink direct_out;
  smpx::query::StreamStats direct_stats;
  auto s = smpx::query::EvaluateStreaming(query, doc, &direct_out,
                                          &direct_stats);
  if (!s.ok()) {
    std::fprintf(stderr, "streaming: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("[1] streaming engine alone:   %.3fs, %llu results\n",
              t1.Seconds(),
              static_cast<unsigned long long>(direct_stats.result_nodes));

  // Prefiltered pipeline.
  auto paths = smpx::paths::ProjectionPath::ParseList(projection);
  auto pf = smpx::core::Prefilter::Compile(smpx::xmlgen::MedlineDtd(),
                                           std::move(*paths));
  if (!pf.ok()) {
    std::fprintf(stderr, "compile: %s\n", pf.status().ToString().c_str());
    return 1;
  }
  smpx::WallTimer t2;
  auto projected = pf->RunOnBuffer(doc);
  smpx::StringSink piped_out;
  smpx::query::StreamStats piped_stats;
  s = smpx::query::EvaluateStreaming(query, *projected, &piped_out,
                                     &piped_stats);
  if (!s.ok()) {
    std::fprintf(stderr, "piped: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "[2] SMP -> streaming engine:  %.3fs, %llu results "
      "(projection %.2f MB)\n",
      t2.Seconds(),
      static_cast<unsigned long long>(piped_stats.result_nodes),
      projected->size() / 1048576.0);
  if (piped_stats.result_nodes != direct_stats.result_nodes ||
      piped_out.str() != direct_out.str()) {
    std::fprintf(stderr, "pipeline changed the results -- projection bug!\n");
    return 1;
  }

  // The M1 effect: a declared-but-absent element.
  auto m1_paths = smpx::paths::ProjectionPath::ParseList(
      "/MedlineCitationSet//CollectionTitle#");
  auto m1 = smpx::core::Prefilter::Compile(smpx::xmlgen::MedlineDtd(),
                                           std::move(*m1_paths));
  smpx::core::RunStats m1_stats;
  auto m1_out = m1->RunOnBuffer(doc, &m1_stats);
  std::printf(
      "[3] query for a DTD-declared but absent element "
      "(CollectionTitle):\n    output %zu bytes, inspected %.1f%% of the "
      "feed, avg shift %.1f chars\n",
      m1_out->size(), m1_stats.CharCompPct(), m1_stats.AvgShift());
  return 0;
}
