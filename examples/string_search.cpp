// Domain example 3: the string matching substrate on its own -- flat
// keyword search with skip statistics, the paper's Section I "ICDE"
// illustration. Compares Boyer-Moore, Commentz-Walter and Aho-Corasick on
// the same text and shows why skip-based search inspects only a fraction
// of the input.
//
//   $ ./string_search [keyword ...]

#include <cstdio>
#include <string>
#include <vector>

#include "strmatch/matcher.h"
#include "xmlgen/xmark.h"

int main(int argc, char** argv) {
  std::vector<std::string> keywords;
  for (int i = 1; i < argc; ++i) keywords.push_back(argv[i]);
  if (keywords.empty()) {
    keywords = {"<description", "<annotation", "<emailaddress"};
  }

  smpx::xmlgen::XmarkOptions gen;
  gen.target_bytes = 4 << 20;
  std::string text = smpx::xmlgen::GenerateXmark(gen);
  std::printf("searching %.1f MB of XMark text for %zu keyword(s)\n\n",
              text.size() / 1048576.0, keywords.size());

  using smpx::strmatch::Algorithm;
  const Algorithm algos[] = {Algorithm::kAuto, Algorithm::kSetHorspool,
                             Algorithm::kAhoCorasick, Algorithm::kMemchr};
  for (Algorithm algo : algos) {
    auto matcher = smpx::strmatch::MakeMatcher(keywords, algo);
    if (matcher == nullptr) continue;
    smpx::strmatch::SearchStats stats;
    size_t from = 0;
    size_t occurrences = 0;
    for (;;) {
      smpx::strmatch::Match m = matcher->Search(text, from, &stats);
      if (!m.found()) break;
      ++occurrences;
      from = m.pos + 1;
    }
    std::printf(
        "%-12s %8zu occurrences, inspected %5.1f%% of the text, "
        "avg shift %5.2f chars\n",
        std::string(matcher->name()).c_str(), occurrences,
        100.0 * static_cast<double>(stats.comparisons) /
            static_cast<double>(text.size()),
        stats.AvgShift());
  }
  std::printf(
      "\nBM/CW skip most characters (the paper's enabling observation); "
      "AC must touch every one.\n");
  return 0;
}
